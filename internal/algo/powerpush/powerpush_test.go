package powerpush_test

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/forward"
	"resacc/internal/algo/power"
	"resacc/internal/algo/powerpush"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// hub: one high-degree center with bidirected spokes — the degree-skewed
// shape where sweep scan order differs most from queue FIFO order.
func hubGraph(leaves int) *graph.Graph {
	b := graph.NewBuilder(leaves + 1)
	for i := 1; i <= leaves; i++ {
		b.AddUndirected(0, int32(i))
	}
	return b.MustBuild()
}

// deadEnd: a binary out-tree whose leaves have no out-edges, exercising the
// d=0 full-absorption push.
func deadEndGraph(depth int) *graph.Graph {
	n := 1<<(depth+1) - 1
	b := graph.NewBuilder(n)
	for v := 0; 2*v+2 < n; v++ {
		b.AddEdge(int32(v), int32(2*v+1))
		b.AddEdge(int32(v), int32(2*v+2))
	}
	return b.MustBuild()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.MustBuild()
}

func quiescent(t *testing.T, g *graph.Graph, rmax float64, residue []float64, label string) {
	t.Helper()
	for v := int32(0); int(v) < g.N(); v++ {
		d := g.OutDegree(v)
		bound := rmax * float64(d)
		if d == 0 {
			bound = rmax
		}
		if residue[v] >= bound {
			t.Fatalf("%s: node %d residue %v still satisfies push condition (bound %v)", label, v, residue[v], bound)
		}
	}
}

func sums(reserve, residue []float64) (rsv, rsd float64) {
	for _, x := range reserve {
		rsv += x
	}
	for _, x := range residue {
		rsd += x
	}
	return
}

// TestSweepMatchesQueueDrain is the satellite equivalence test: on hub,
// dead-end and cycle graphs the sweep run to quiescence must land in the
// same state family as the sequential queue drain — both quiescent, both
// mass-conserving, and reserves equal within the forward-push invariant's
// residual bound (|reserve[t] − π(t)| ≤ Σ residue, since π(v,t) ≤ 1). The
// two are NOT bit-identical in general: push order differs, so float
// summation order differs.
func TestSweepMatchesQueueDrain(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"hub", hubGraph(64)},
		{"deadend", deadEndGraph(6)},
		{"cycle", cycleGraph(50)},
		{"rmat", gen.RMAT(9, 5, 11)},
	}
	const alpha, rmax = 0.2, 1e-6
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			n := g.N()

			st := forward.NewState(n, 0)
			forward.Run(g, alpha, rmax, st)

			reserve := make([]float64, n)
			residue := make([]float64, n)
			residue[0] = 1
			pst, aborted := powerpush.Sweep(g, alpha, rmax, reserve, residue, nil, -1, 0, nil)
			if aborted {
				t.Fatal("nil done channel aborted")
			}
			if pst.Pushes == 0 || pst.Sweeps == 0 {
				t.Fatalf("no work recorded: %+v", pst)
			}

			quiescent(t, g, rmax, st.Residue, "queue")
			quiescent(t, g, rmax, residue, "sweep")

			qrsv, qrsd := sums(st.Reserve, st.Residue)
			srsv, srsd := sums(reserve, residue)
			if math.Abs(qrsv+qrsd-1) > 1e-9 {
				t.Fatalf("queue drain lost mass: Σ=%v", qrsv+qrsd)
			}
			if math.Abs(srsv+srsd-1) > 1e-9 {
				t.Fatalf("sweep lost mass: Σ=%v", srsv+srsd)
			}

			// Residue-invariant equivalence: each backend's reserve is within
			// its own leftover residue mass of the true PPR, so they are
			// within the sum of the two of each other, per node.
			bound := qrsd + srsd + 1e-12
			for v := 0; v < n; v++ {
				if diff := math.Abs(st.Reserve[v] - reserve[v]); diff > bound {
					t.Fatalf("node %d: |queue−sweep| = %v > residual bound %v", v, diff, bound)
				}
			}
		})
	}
}

// TestSweepRestrictAndSkip checks eligibility semantics match the forward
// engine: the skip node and nodes outside restrict never push (their residue
// only accumulates), everything inside drains below threshold.
func TestSweepRestrictAndSkip(t *testing.T) {
	g := gen.ErdosRenyi(200, 1400, 3)
	const alpha, rmax = 0.2, 1e-5
	n := g.N()

	var restrict ws.Marks
	restrict.Grow(n)
	restrict.Clear()
	for v := int32(0); v < 100; v++ {
		restrict.Mark(v)
	}
	const skip = int32(7)

	st := forward.NewState(n, 0)
	st.RestrictTo(&restrict, skip)
	forward.Run(g, alpha, rmax, st)

	reserve := make([]float64, n)
	residue := make([]float64, n)
	residue[0] = 1
	if _, aborted := powerpush.Sweep(g, alpha, rmax, reserve, residue, &restrict, skip, 0, nil); aborted {
		t.Fatal("aborted")
	}

	var qOut, sOut float64 // mass parked on ineligible nodes must match within bound
	for v := int32(0); int(v) < n; v++ {
		eligible := restrict.Has(v) && v != skip
		if eligible {
			d := g.OutDegree(v)
			bound := rmax * float64(d)
			if d == 0 {
				bound = rmax
			}
			if residue[v] >= bound {
				t.Fatalf("eligible node %d not drained: %v", v, residue[v])
			}
		} else {
			qOut += st.Residue[v]
			sOut += st.Reserve[v]
			if reserve[v] != 0 {
				t.Fatalf("ineligible node %d gained reserve %v in sweep", v, reserve[v])
			}
			if st.Reserve[v] != 0 {
				t.Fatalf("ineligible node %d gained reserve %v in queue drain", v, st.Reserve[v])
			}
		}
	}
	_ = qOut
	_ = sOut
	qrsv, qrsd := sums(st.Reserve, st.Residue)
	srsv, srsd := sums(reserve, residue)
	if math.Abs(qrsv+qrsd-1) > 1e-9 || math.Abs(srsv+srsd-1) > 1e-9 {
		t.Fatalf("mass lost: queue Σ=%v sweep Σ=%v", qrsv+qrsd, srsv+srsd)
	}
	bound := qrsd + srsd + 1e-12
	for v := 0; v < n; v++ {
		if diff := math.Abs(st.Reserve[v] - reserve[v]); diff > bound {
			t.Fatalf("node %d: |queue−sweep| = %v > %v", v, diff, bound)
		}
	}
}

// TestSweepExitMass: with a huge exitMass every round's pushed mass is below
// the bar, so the sweep runs exactly one round and hands back survivors.
func TestSweepExitMass(t *testing.T) {
	g := gen.ErdosRenyi(300, 2400, 9)
	reserve := make([]float64, g.N())
	residue := make([]float64, g.N())
	residue[0] = 1
	st, aborted := powerpush.Sweep(g, 0.2, 1e-7, reserve, residue, nil, -1, 1<<40, nil)
	if aborted {
		t.Fatal("aborted")
	}
	if st.Sweeps != 1 {
		t.Fatalf("want exactly 1 sweep under huge exitMass, got %d", st.Sweeps)
	}
	// State must still satisfy the invariant (mass conserved) even though it
	// is not quiescent.
	rsv, rsd := sums(reserve, residue)
	if math.Abs(rsv+rsd-1) > 1e-9 {
		t.Fatalf("mass lost mid-escalation: Σ=%v", rsv+rsd)
	}
}

// TestSweepCancellation: a pre-closed done channel aborts the sweep at the
// first poll, leaving an invariant-preserving (mass-conserving) state.
func TestSweepCancellation(t *testing.T) {
	g := gen.ErdosRenyi(500, 4000, 1)
	reserve := make([]float64, g.N())
	residue := make([]float64, g.N())
	residue[0] = 1
	done := make(chan struct{})
	close(done)
	_, aborted := powerpush.Sweep(g, 0.2, 1e-9, reserve, residue, nil, -1, 0, done)
	if !aborted {
		t.Fatal("want aborted=true on closed done channel")
	}
	rsv, rsd := sums(reserve, residue)
	if math.Abs(rsv+rsd-1) > 1e-9 {
		t.Fatalf("abort lost mass: Σ=%v", rsv+rsd)
	}
}

// TestSolverGroundTruth: the standalone solver's additive error vs power
// iteration ground truth is bounded by its leftover residue mass.
func TestSolverGroundTruth(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"hub", hubGraph(32)},
		{"deadend", deadEndGraph(5)},
		{"cycle", cycleGraph(40)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			p := algo.DefaultParams(g)
			const rmax = 1e-9
			est, err := powerpush.Solver{RMax: rmax}.SingleSource(g, 0, p)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := power.GroundTruth(g, 0, p)
			if err != nil {
				t.Fatal(err)
			}
			// Leftover residue ≤ rmax·(n+m); ground truth has its own tiny
			// convergence error.
			bound := rmax*float64(g.N()+g.M()) + 1e-7
			for v := range est {
				if diff := math.Abs(est[v] - truth[v]); diff > bound {
					t.Fatalf("node %d: |est−truth| = %v > %v", v, diff, bound)
				}
			}
		})
	}
}

func TestSolverErrors(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (powerpush.Solver{}).SingleSource(g, -1, p); err == nil {
		t.Fatal("want bad-source error")
	}
	if (powerpush.Solver{}).Name() != "PowerPush" {
		t.Fatal("name drifted")
	}
}
