// Package powerpush implements the unified power-iteration + forward-push
// drain of Wu & Wei (arXiv:2101.03652): when the set of nodes above the
// push threshold is dense, the queue-based local drain degenerates — its
// per-edge bookkeeping (queue-membership stamps, dirty marks, threshold
// re-checks on every arriving edge) costs several memory touches per edge,
// and the FIFO order scatters accesses across the residue vector. A
// power-iteration-style whole-range sweep does the same pushes as plain
// sequential passes over the CSR arrays: each round scans the nodes in id
// order and pushes every node currently above the threshold, in place.
//
// The in-place (Gauss–Seidel) update is deliberate: residue pushed to a
// node later in the scan order is re-pushed within the same round, so mass
// cascades forward through each sweep rather than waiting for the next
// round as a Jacobi two-vector iteration would. Every individual push is
// the standard Definition 7 push, so the forward-push invariant
// π(s,t) = reserve[t] + Σ_v residue[v]·π(v,t) holds at every step, and a
// sweep that runs to quiescence terminates in exactly the same state
// family as the queue drain: no eligible node satisfies the push
// condition. Reserve values differ from the queue drain only in float
// summation order; the residual bound — which is what the ResAcc theory
// consumes — is identical.
//
// The sweep is adaptive per round: it reports back to the caller (who
// falls back to the queue-based drain) as soon as a round's pushed
// out-edge mass drops below exitMass, because scanning the whole range to
// find a thin frontier is exactly the regime where the local queue wins.
package powerpush

import (
	"resacc/internal/algo"
	"resacc/internal/graph"
	"resacc/internal/ws"
)

// Stats summarises one Sweep call.
type Stats struct {
	// Sweeps is the number of whole-range rounds executed (including the
	// final, below-threshold one).
	Sweeps int64
	// Pushes is the number of push operations performed across all rounds.
	Pushes int64
}

// sweepCheckMask amortizes the done-channel poll to one non-blocking
// receive per 4096 scanned nodes, mirroring the walk loops' cadence.
const sweepCheckMask = 4095

// Sweep runs whole-range push rounds over reserve/residue until quiescence,
// until a round's pushed out-edge mass falls below exitMass (≤ 0 = run to
// quiescence), or until done fires. Eligibility matches the forward
// engine's: skip (when ≥ 0) never pushes, and with a non-nil restrict only
// members push — receiving residue is never restricted. The caller owns
// dirty tracking; a whole-range sweep may write any slot, so callers on a
// pooled workspace mark the full range once (ws.Marks.MarkAll) instead of
// paying a per-edge mark here. It reports true when done cut the sweep
// short; the half-swept state still satisfies the push invariant at every
// node.
func Sweep(g *graph.Graph, alpha, rmax float64, reserve, residue []float64,
	restrict *ws.Marks, skip int32, exitMass int, done <-chan struct{}) (Stats, bool) {
	n := int32(g.N())
	var st Stats
	for {
		pushedMass := 0
		var pushes int64
		for v := int32(0); v < n; v++ {
			if done != nil && v&sweepCheckMask == 0 {
				select {
				case <-done:
					st.Sweeps++
					st.Pushes += pushes
					return st, true
				default:
				}
			}
			rv := residue[v]
			if rv == 0 || v == skip {
				continue
			}
			if restrict != nil && !restrict.Has(v) {
				continue
			}
			d := g.OutDegree(v)
			if d == 0 {
				// Dead-end semantics: the walk stops here with certainty.
				if rv < rmax {
					continue
				}
				reserve[v] += rv
				residue[v] = 0
				pushes++
				pushedMass++
				continue
			}
			if rv < rmax*float64(d) {
				continue
			}
			residue[v] = 0
			reserve[v] += alpha * rv
			share := (1 - alpha) * rv / float64(d)
			for _, w := range g.Out(v) {
				residue[w] += share
			}
			pushes++
			pushedMass += d
		}
		st.Sweeps++
		st.Pushes += pushes
		if pushes == 0 || (exitMass > 0 && pushedMass < exitMass) {
			return st, false
		}
	}
}

// Solver is the standalone whole-graph power+push baseline: unit residue at
// the source swept to quiescence at a fixed threshold. Like the FWD
// baseline it reports the reserves and ignores the leftover residues, so
// its additive error at threshold r is bounded by the final Σ residue
// (≤ r·(n+m) in the worst case, far smaller in practice).
type Solver struct {
	// RMax overrides Params.RMaxF when non-zero.
	RMax float64
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "PowerPush" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	rmax := s.RMax
	if rmax == 0 {
		rmax = p.RMaxF
	}
	reserve := make([]float64, g.N())
	residue := make([]float64, g.N())
	residue[src] = 1
	st, _ := Sweep(g, p.Alpha, rmax, reserve, residue, nil, -1, 0, nil)
	algo.AddPushes(st.Pushes)
	return reserve, nil
}
