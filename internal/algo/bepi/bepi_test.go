package bepi

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

func TestBePIMatchesTruth(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": gen.Grid(7, 7),
		"er":   gen.ErdosRenyi(200, 1200, 3),
		"rmat": gen.RMAT(7, 4, 5), // dead ends
	}
	for name, g := range graphs {
		p := algo.DefaultParams(g)
		ix, err := BuildIndex(g, p.Alpha, Options{NHub: 16, SpokeIters: 80})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, src := range []int32{0, int32(g.N() / 2)} {
			est, err := Solver{Index: ix}.SingleSource(g, src, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			truth, err := power.GroundTruth(g, src, p)
			if err != nil {
				t.Fatal(err)
			}
			if e := eval.MaxAbsErr(truth, est); e > 1e-6 {
				t.Errorf("%s src=%d: max abs err %v", name, src, e)
			}
		}
	}
}

func TestBePIHubSource(t *testing.T) {
	// Query from a hub node exercises the rhsH path.
	g := gen.BarabasiAlbert(150, 3, 7)
	p := algo.DefaultParams(g)
	ix, err := BuildIndex(g, p.Alpha, Options{NHub: 8, SpokeIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	hub := ix.hubs[0]
	est, err := Solver{Index: ix}.SingleSource(g, hub, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, hub, p)
	if err != nil {
		t.Fatal(err)
	}
	if e := eval.MaxAbsErr(truth, est); e > 1e-6 {
		t.Fatalf("hub query err %v", e)
	}
}

func TestBePIAllHubs(t *testing.T) {
	// Degenerate partition: every node is a hub; the Schur complement is
	// the whole system and spoke solves are no-ops.
	g := gen.Grid(4, 4)
	p := algo.DefaultParams(g)
	ix, err := BuildIndex(g, p.Alpha, Options{NHub: g.N(), SpokeIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Solver{Index: ix}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if e := eval.MaxAbsErr(truth, est); e > 1e-9 {
		t.Fatalf("all-hub solve err %v", e)
	}
}

func TestBePIMemoryBudget(t *testing.T) {
	g := gen.Grid(20, 20)
	if _, err := BuildIndex(g, 0.2, Options{NHub: 64, MaxBytes: 100}); err == nil {
		t.Fatal("want o.o.m-by-policy error")
	}
}

func TestBePIValidation(t *testing.T) {
	g := gen.Grid(4, 4)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, 0, p); err == nil {
		t.Fatal("want missing index error")
	}
	g2 := gen.Grid(5, 5)
	ix, err := BuildIndex(g2, 0.2, Options{NHub: 4, SpokeIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Solver{Index: ix}).SingleSource(g, 0, p); err == nil {
		t.Fatal("want graph mismatch error")
	}
	if (Solver{}).Name() != "BePI" {
		t.Error("name drifted")
	}
}

func TestTopDegree(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 1)
	hubs := topDegree(g, 5)
	if len(hubs) != 5 {
		t.Fatalf("len=%d", len(hubs))
	}
	for i := 1; i < len(hubs); i++ {
		di := g.OutDegree(hubs[i-1]) + g.InDegree(hubs[i-1])
		dj := g.OutDegree(hubs[i]) + g.InDegree(hubs[i])
		if di < dj {
			t.Fatal("hubs not sorted by degree")
		}
	}
}

func TestInvertDense(t *testing.T) {
	a := []float64{4, 7, 2, 6}
	inv, err := invertDense(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.6, -0.7, -0.2, 0.4}
	for i := range want {
		if math.Abs(inv[i]-want[i]) > 1e-12 {
			t.Fatalf("inv=%v", inv)
		}
	}
	if _, err := invertDense([]float64{0, 0, 0, 0}, 2); err == nil {
		t.Fatal("want singular error")
	}
}
