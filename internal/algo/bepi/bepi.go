// Package bepi implements BePI-lite, this repository's stand-in for BePI
// (Jung et al., SIGMOD'17), the best matrix-based index-oriented baseline
// in the paper's Table IV. Real BePI reorders the graph around hubs and
// precomputes a block-elimination (Schur complement) of the RWR linear
// system; BePI-lite keeps exactly that structure at reduced engineering
// scale (see DESIGN.md §4):
//
//   - hubs = the nHub highest-degree nodes, spokes = the rest;
//   - the system (I − (1−α)·M̃)·π = α·e_s is partitioned into 2×2 blocks;
//   - preprocessing solves one spoke system per hub to form the dense hub
//     Schur complement and inverts it (the index);
//   - a query needs two iterative spoke solves plus one dense hub solve.
//
// M̃ is the column-stochastic walk matrix with dead ends encoded as
// (1−α)-weighted self-loops, which makes the solution equal π under this
// repository's dead-end semantics (see internal/algo/inverse).
//
// Like real BePI the preprocessing is superlinear and the index is dense in
// the hub dimension, so a byte budget reproduces the paper's out-of-memory
// rows on the largest graphs.
package bepi

import (
	"errors"
	"fmt"
	"math"

	"resacc/internal/algo"
	"resacc/internal/graph"
)

// Index is the precomputed block-elimination structure.
type Index struct {
	g       *graph.Graph
	alpha   float64
	hubs    []int32
	hubPos  []int32 // node -> index into hubs, or -1
	schur   []float64
	iters   int
	indexed int64 // bytes
	// order lists the spoke nodes in SCC-topological order (predecessors
	// first), the reordering real BePI applies to make the non-hub block
	// block-triangular; the spoke solve sweeps in this order
	// (Gauss-Seidel), which is exact on acyclic parts after one pass.
	order []int32
}

// Bytes returns the index size in bytes.
func (ix *Index) Bytes() int64 { return ix.indexed }

// Options configures BuildIndex.
type Options struct {
	// NHub is the hub count; 0 means min(256, max(16, √n)).
	NHub int
	// SpokeIters is the Neumann iteration count for spoke solves; the
	// residual mass after k iterations is (1−α)^k. 0 means 60.
	SpokeIters int
	// MaxBytes bounds the index size (0 = unlimited); exceeding it fails,
	// reproducing the paper's o.o.m. policy.
	MaxBytes int64
}

// BuildIndex runs BePI-lite preprocessing.
func BuildIndex(g *graph.Graph, alpha float64, opt Options) (*Index, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("bepi: empty graph")
	}
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("bepi: alpha %v outside (0,1)", alpha)
	}
	nHub := opt.NHub
	if nHub <= 0 {
		nHub = int(math.Sqrt(float64(n)))
		if nHub < 16 {
			nHub = 16
		}
		if nHub > 256 {
			nHub = 256
		}
	}
	if nHub > n {
		nHub = n
	}
	iters := opt.SpokeIters
	if iters <= 0 {
		iters = 60
	}
	estBytes := int64(nHub)*int64(nHub)*8 + int64(n)*4
	if opt.MaxBytes > 0 && estBytes > opt.MaxBytes {
		return nil, fmt.Errorf("bepi: index of %d bytes exceeds budget %d (out of memory by policy)", estBytes, opt.MaxBytes)
	}

	ix := &Index{g: g, alpha: alpha, iters: iters, indexed: estBytes}
	// Hub selection: by total degree (in+out), the nodes whose rows/cols
	// make the spoke block hardest to solve.
	ix.hubs = topDegree(g, nHub)
	ix.hubPos = make([]int32, n)
	for i := range ix.hubPos {
		ix.hubPos[i] = -1
	}
	for i, h := range ix.hubs {
		ix.hubPos[h] = int32(i)
	}
	for _, v := range graph.TopoOrderBySCC(g) {
		if ix.hubPos[v] < 0 {
			ix.order = append(ix.order, v)
		}
	}
	ix.indexed += int64(len(ix.order)) * 4

	// Schur complement S = B_HH − B_HS·B_SS⁻¹·B_SH, built column by column.
	s := make([]float64, nHub*nHub)
	spoke := make([]float64, n)
	solved := make([]float64, n)
	tmp := make([]float64, n)
	col := make([]float64, nHub)
	for j, hj := range ix.hubs {
		// Column j of B_SH: −(1−α)·M restricted to spoke rows, from hub j.
		for i := range spoke {
			spoke[i] = 0
		}
		ix.scatter(hj, 1, spoke, false)
		for i := range spoke {
			spoke[i] = -spoke[i]
		}
		ix.solveSpoke(spoke, solved, tmp)
		// z = B_HS·solved (hub rows from spoke columns), then column j of
		// S is B_HH·e_j − z.
		for i := range col {
			col[i] = 0
		}
		ix.gatherHub(solved, col, -1)
		// B_HH e_j = e_j − (1−α)·M_HH e_j.
		col[j] += 1
		for i := range tmp {
			tmp[i] = 0
		}
		ix.scatter(hj, 1, tmp, true)
		for i, h := range ix.hubs {
			col[i] -= tmp[h]
		}
		// Store row-major: entry (i,j).
		for i, v := range col {
			s[i*nHub+j] = v
		}
	}
	inv, err := invertDense(s, nHub)
	if err != nil {
		return nil, fmt.Errorf("bepi: schur complement: %w", err)
	}
	ix.schur = inv
	return ix, nil
}

// scatter adds w·(1−α)·M·e_v into dst: it distributes weight from node v to
// its out-neighbours (or to itself if v is a dead end). When hubRows is
// false, entries landing on hub rows are discarded (spoke-restricted);
// when true, all rows are written.
func (ix *Index) scatter(v int32, w float64, dst []float64, hubRows bool) {
	g := ix.g
	d := g.OutDegree(v)
	if d == 0 {
		if hubRows || ix.hubPos[v] < 0 {
			dst[v] += w * (1 - ix.alpha)
		}
		return
	}
	share := w * (1 - ix.alpha) / float64(d)
	for _, t := range g.Out(v) {
		if hubRows || ix.hubPos[t] < 0 {
			dst[t] += share
		}
	}
}

// gatherHub accumulates sign·B_HS·x into hub-indexed dst, where x is a
// spoke vector (entries on hub positions are ignored).
func (ix *Index) gatherHub(x []float64, dst []float64, sign float64) {
	g := ix.g
	for u := int32(0); int(u) < g.N(); u++ {
		if ix.hubPos[u] >= 0 || x[u] == 0 {
			continue
		}
		d := g.OutDegree(u)
		if d == 0 {
			continue // dead-end self-loop stays in the spoke block
		}
		share := sign * -(1 - ix.alpha) * x[u] / float64(d)
		for _, t := range g.Out(u) {
			if hp := ix.hubPos[t]; hp >= 0 {
				dst[hp] += share
			}
		}
	}
}

// solveSpoke solves B_SS·x = b with Gauss-Seidel sweeps in SCC-topological
// order: x[u] = b[u] + (1−α)·Σ_{v→u, v spoke} x[v]/d_out(v) (dead ends
// divide by α for their synthetic self-loop). Acyclic stretches converge
// in a single sweep; cycles converge geometrically, and iteration stops
// early once a sweep changes nothing beyond 1e-16. b and x are full-length
// vectors with zeros on hub positions; tmp is accepted for signature
// stability but unused.
func (ix *Index) solveSpoke(b, x, tmp []float64) {
	_ = tmp
	g := ix.g
	for i := range x {
		x[i] = 0
	}
	for it := 0; it < ix.iters; it++ {
		maxDelta := 0.0
		for _, u := range ix.order {
			inflow := 0.0
			for _, v := range g.In(u) {
				if ix.hubPos[v] >= 0 {
					continue
				}
				if xv := x[v]; xv != 0 {
					inflow += xv / float64(g.OutDegree(v))
				}
			}
			nu := b[u] + (1-ix.alpha)*inflow
			if g.OutDegree(u) == 0 {
				nu /= ix.alpha
			}
			if d := math.Abs(nu - x[u]); d > maxDelta {
				maxDelta = d
			}
			x[u] = nu
		}
		if maxDelta < 1e-16 {
			break
		}
	}
}

// Solver answers SSRWR queries from a BePI-lite index.
type Solver struct {
	Index *Index
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "BePI" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	ix := s.Index
	if ix == nil {
		return nil, errors.New("bepi: requires a prebuilt index")
	}
	if ix.g != g {
		return nil, errors.New("bepi: index built for a different graph")
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	n := g.N()
	nHub := len(ix.hubs)
	rhsS := make([]float64, n)
	rhsH := make([]float64, nHub)
	if hp := ix.hubPos[src]; hp >= 0 {
		rhsH[hp] = p.Alpha
	} else {
		rhsS[src] = p.Alpha
	}
	y := make([]float64, n)
	tmp := make([]float64, n)
	ix.solveSpoke(rhsS, y, tmp)
	// Hub system: S·π_H = rhs_H − B_HS·y.
	hubRHS := make([]float64, nHub)
	copy(hubRHS, rhsH)
	ix.gatherHub(y, hubRHS, -1)
	piH := make([]float64, nHub)
	for i := 0; i < nHub; i++ {
		acc := 0.0
		for j := 0; j < nHub; j++ {
			acc += ix.schur[i*nHub+j] * hubRHS[j]
		}
		piH[i] = acc
	}
	// Spoke back-substitution: B_SS·π_S = rhs_S − B_SH·π_H.
	b2 := make([]float64, n)
	copy(b2, rhsS)
	for j, hj := range ix.hubs {
		if piH[j] != 0 {
			ix.scatter(hj, piH[j], b2, false) // −B_SH·π_H = +(1−α)M_SH·π_H
		}
	}
	piS := make([]float64, n)
	ix.solveSpoke(b2, piS, tmp)
	// Assemble the full vector.
	out := piS
	for j, hj := range ix.hubs {
		out[hj] = piH[j]
	}
	return out, nil
}

// topDegree returns the k nodes with the largest in+out degree.
func topDegree(g *graph.Graph, k int) []int32 {
	type nd struct {
		v int32
		d int
	}
	top := make([]nd, 0, k)
	for v := int32(0); int(v) < g.N(); v++ {
		d := g.OutDegree(v) + g.InDegree(v)
		i := len(top)
		for i > 0 && (top[i-1].d < d || (top[i-1].d == d && top[i-1].v > v)) {
			i--
		}
		if i < k {
			if len(top) < k {
				top = append(top, nd{})
			}
			copy(top[i+1:], top[i:len(top)-1])
			top[i] = nd{v, d}
		}
	}
	out := make([]int32, len(top))
	for i, t := range top {
		out[i] = t.v
	}
	return out
}

// invertDense inverts the n×n row-major matrix a by Gauss-Jordan with
// partial pivoting.
func invertDense(a []float64, n int) ([]float64, error) {
	inv := make([]float64, n*n)
	for i := 0; i < n; i++ {
		inv[i*n+i] = 1
	}
	work := make([]float64, len(a))
	copy(work, a)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(work[r*n+col]) > math.Abs(work[piv*n+col]) {
				piv = r
			}
		}
		if math.Abs(work[piv*n+col]) < 1e-14 {
			return nil, fmt.Errorf("singular at column %d", col)
		}
		if piv != col {
			swapRows(work, n, piv, col)
			swapRows(inv, n, piv, col)
		}
		pv := work[col*n+col]
		for c := 0; c < n; c++ {
			work[col*n+c] /= pv
			inv[col*n+c] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work[r*n+col]
			if f == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				work[r*n+c] -= f * work[col*n+c]
				inv[r*n+c] -= f * inv[col*n+c]
			}
		}
	}
	return inv, nil
}

func swapRows(a []float64, n, i, j int) {
	ri, rj := a[i*n:(i+1)*n], a[j*n:(j+1)*n]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}
