package algo

import (
	"math"
	"runtime"
	"sync"

	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
	"resacc/internal/rng"
	"resacc/internal/ws"
)

// RemedyParallel is Remedy with the walk simulation fanned out over a pool
// of goroutines. Each worker owns an independent RNG stream (split from the
// seed) and a private accumulation vector, merged at the end, so the result
// is deterministic for a fixed (seed, workers) pair and race-free.
//
// workers ≤ 1 falls back to the sequential Remedy. The walk-count
// accounting (n_r, per-node ⌈r(v)·n_r/r_sum⌉, MaxWalks cap) is identical to
// the sequential phase, so the Theorem 3 guarantee carries over unchanged.
func RemedyParallel(g *graph.Graph, p Params, pi, residue []float64, seed uint64, workers int) RemedyStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return Remedy(g, p, pi, residue, rng.New(seed))
	}

	var st RemedyStats
	for _, rv := range residue {
		if rv > 0 {
			st.RSum += rv
		}
	}
	if st.RSum <= 0 {
		return st
	}
	st.NR = st.RSum * p.WalkCoefficient() * p.EffectiveNScale()
	if st.NR < 1 {
		st.NR = 1
	}

	// Plan the walk assignment sequentially (cheap) so the MaxWalks cap
	// behaves exactly like the sequential phase, then execute in parallel.
	budget := int64(math.MaxInt64)
	if p.MaxWalks > 0 {
		budget = int64(p.MaxWalks)
	}
	jobsBuf := jobsPool.Get().(*[]remedyJob)
	jobs := (*jobsBuf)[:0]
	for v := int32(0); int(v) < len(residue); v++ {
		rv := residue[v]
		if rv <= 0 {
			continue
		}
		nv := int64(math.Ceil(rv * st.NR / st.RSum))
		if nv < 1 {
			nv = 1
		}
		if st.Walks+nv > budget {
			nv = budget - st.Walks
			if nv <= 0 {
				break
			}
		}
		jobs = append(jobs, remedyJob{v, nv, rv / float64(nv)})
		st.Walks += nv
	}
	// Idle workers would each borrow, merge and return an empty
	// accumulator; clamp to the job count so tiny remedy phases don't pay
	// for parallelism they can't use. The clamp is part of the stream
	// split, so results stay deterministic per (seed, requested workers).
	if workers > len(jobs) {
		workers = len(jobs)
	}

	root := rng.New(seed)
	accums := make([]*ws.Accum, workers)
	streams := make([]*rng.Source, workers)
	for w := range streams {
		streams[w] = root.Split()
	}
	var workerPanic *crash.PanicError
	var panicOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic escaping a detached goroutine kills the process;
			// recover here and re-raise on the caller instead.
			defer func() {
				if v := recover(); v != nil {
					pe := crash.Capture("algo: remedy walk worker", v)
					panicOnce.Do(func() { workerPanic = pe })
				}
			}()
			faultinject.Hit("algo.remedy.worker")
			a := ws.GetAccum(g.N())
			r := streams[w]
			for i := w; i < len(jobs); i += workers {
				j := jobs[i]
				for k := int64(0); k < j.n; k++ {
					t := Walk(g, j.v, p.Alpha, r)
					a.Add(t, j.inc)
				}
			}
			accums[w] = a
		}()
	}
	wg.Wait()
	if workerPanic != nil {
		// Accumulators are poisoned or moot; drop them and let the
		// query-level barrier convert the panic into an error.
		panic(workerPanic)
	}
	// Merge in worker order over touched entries only — O(walk endpoints)
	// rather than O(workers·n). Each worker holds at most one partial per
	// node, so per-slot addition order (worker 0, 1, …) is unchanged and
	// the result is bit-identical to the dense merge.
	for _, a := range accums {
		for _, t := range a.Marks.Touched() {
			pi[t] += a.Val[t]
		}
		ws.PutAccum(a)
	}
	*jobsBuf = jobs[:0]
	jobsPool.Put(jobsBuf)
	AddWalks(st.Walks)
	return st
}

// remedyJob is one node's planned walk assignment (node, walk count,
// per-walk increment).
type remedyJob struct {
	v   int32
	n   int64
	inc float64
}

// jobsPool recycles the per-query walk plan so the parallel remedy path
// stops allocating a fresh jobs slice (and its growth doublings) per query.
var jobsPool = sync.Pool{New: func() any { return new([]remedyJob) }}
