package pressure

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic controller
// tests; the real components only ever read it through the now func.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testCodel(target, interval time.Duration) (*Codel, *fakeClock) {
	clk := newFakeClock()
	c := NewCodel(target, interval)
	c.now = clk.Now
	return c, clk
}

func TestCodelBelowTargetNeverOverloads(t *testing.T) {
	c, clk := testCodel(10*time.Millisecond, 100*time.Millisecond)
	for i := 0; i < 100; i++ {
		c.Observe(time.Millisecond)
		clk.Advance(5 * time.Millisecond)
	}
	if c.Overloaded() {
		t.Fatal("overloaded with every sojourn below target")
	}
}

func TestCodelSustainedAboveTargetSheds(t *testing.T) {
	c, clk := testCodel(10*time.Millisecond, 100*time.Millisecond)
	// First high observation only starts the interval clock.
	c.Observe(50 * time.Millisecond)
	if c.Overloaded() {
		t.Fatal("overloaded immediately on first high sojourn (bursts must be absorbed)")
	}
	// Stay above target, but for less than the interval: still fine.
	clk.Advance(50 * time.Millisecond)
	c.Observe(50 * time.Millisecond)
	if c.Overloaded() {
		t.Fatal("overloaded before a full interval above target")
	}
	// A full interval above target: standing queue, shed.
	clk.Advance(60 * time.Millisecond)
	c.Observe(50 * time.Millisecond)
	if !c.Overloaded() {
		t.Fatal("not overloaded after a full interval above target")
	}
	// One below-target dequeue ends the episode.
	clk.Advance(time.Millisecond)
	c.Observe(time.Millisecond)
	if c.Overloaded() {
		t.Fatal("still overloaded after sojourn dropped below target")
	}
}

func TestCodelDipBelowTargetResetsInterval(t *testing.T) {
	c, clk := testCodel(10*time.Millisecond, 100*time.Millisecond)
	c.Observe(50 * time.Millisecond)
	clk.Advance(90 * time.Millisecond)
	c.Observe(time.Millisecond) // dip: the interval clock must restart
	clk.Advance(20 * time.Millisecond)
	c.Observe(50 * time.Millisecond)
	if c.Overloaded() {
		t.Fatal("overloaded although the above-target episode restarted")
	}
}

func TestCodelIdleRecovers(t *testing.T) {
	c, clk := testCodel(10*time.Millisecond, 100*time.Millisecond)
	c.Observe(50 * time.Millisecond)
	clk.Advance(110 * time.Millisecond)
	c.Observe(50 * time.Millisecond)
	if !c.Overloaded() {
		t.Fatal("not overloaded after sustained high sojourn")
	}
	// No dequeues for two intervals: the queue cannot be standing.
	clk.Advance(250 * time.Millisecond)
	if c.Overloaded() {
		t.Fatal("overload state survived an idle queue")
	}
}

func TestCodelDrainRateAndRetryAfter(t *testing.T) {
	c, clk := testCodel(10*time.Millisecond, 100*time.Millisecond)
	if got := c.RetryAfter(100); got != time.Second {
		t.Fatalf("cold RetryAfter = %v, want 1s floor", got)
	}
	// 10 completions over 1s -> 10 tasks/s.
	for i := 0; i < 11; i++ {
		c.Complete()
		clk.Advance(100 * time.Millisecond)
	}
	rate := c.DrainRate()
	if rate < 9 || rate > 11 {
		t.Fatalf("drain rate = %.2f, want ~10/s", rate)
	}
	// 19 queued ahead + this one = 2s at 10/s.
	if got := c.RetryAfter(19); got != 2*time.Second {
		t.Fatalf("RetryAfter(19) = %v, want 2s", got)
	}
	if got := c.RetryAfter(0); got != time.Second {
		t.Fatalf("RetryAfter(0) = %v, want 1s", got)
	}
	if got := c.RetryAfter(1_000_000); got != MaxRetryAfter {
		t.Fatalf("RetryAfter(huge) = %v, want clamp to %v", got, MaxRetryAfter)
	}
}

func TestCodelDrainRateColdWindow(t *testing.T) {
	c, clk := testCodel(10*time.Millisecond, 100*time.Millisecond)
	// Only a partial window so far: the in-progress counts must still
	// yield an estimate instead of the 1s fallback.
	c.Complete()
	clk.Advance(200 * time.Millisecond)
	c.Complete()
	clk.Advance(200 * time.Millisecond)
	if rate := c.DrainRate(); rate <= 0 {
		t.Fatalf("drain rate = %v, want partial-window estimate > 0", rate)
	}
}

func TestCodelLoadFrac(t *testing.T) {
	c, clk := testCodel(10*time.Millisecond, 100*time.Millisecond)
	if f := c.LoadFrac(); f != 0 {
		t.Fatalf("idle LoadFrac = %v, want 0", f)
	}
	// Saturate the EWMA at 4x target: critical.
	for i := 0; i < 64; i++ {
		c.Observe(40 * time.Millisecond)
		clk.Advance(10 * time.Millisecond)
	}
	if f := c.LoadFrac(); f < 0.95 {
		t.Fatalf("LoadFrac at 4x target = %v, want ~1", f)
	}
	if !c.Overloaded() {
		t.Fatal("not overloaded at sustained 4x target")
	}
}

func TestCodelShedCounter(t *testing.T) {
	c, _ := testCodel(0, 0)
	if c.Target() != DefaultSojournTarget {
		t.Fatalf("default target = %v", c.Target())
	}
	c.Shed()
	c.Shed()
	if c.Sheds() != 2 {
		t.Fatalf("sheds = %v, want 2", c.Sheds())
	}
}

// TestCodelLoadFracDecaysWhenIdle is the anti-wedge regression: a sojourn
// spike pushes LoadFrac past Critical, and if everything is then shed
// (nothing dequeues, so nothing Observes), the EWMA must decay on its own
// instead of holding the pressure level at Critical forever.
func TestCodelLoadFracDecaysWhenIdle(t *testing.T) {
	c, clk := testCodel(10*time.Millisecond, 100*time.Millisecond)
	c.Observe(200 * time.Millisecond)
	c.Observe(200 * time.Millisecond)
	if f := c.LoadFrac(); f < 1 {
		t.Fatalf("LoadFrac after 200ms sojourns = %v, want ≥ 1 (Critical)", f)
	}
	// No dequeues for a while: each idle interval halves the estimate.
	clk.Advance(300 * time.Millisecond)
	mid := c.LoadFrac()
	if f := c.LoadFrac(); f >= 1 {
		t.Fatalf("LoadFrac after 3 idle intervals = %v, want decayed below 1", f)
	}
	clk.Advance(2 * time.Second)
	if f := c.LoadFrac(); f >= mid || f > 0.01 {
		t.Fatalf("LoadFrac after 2s idle = %v, want ~0", f)
	}
	if s := c.Sojourn(); s != 0 {
		t.Fatalf("Sojourn after long idle = %v, want 0", s)
	}
	// A fresh observation restarts the estimate from live data.
	c.Observe(5 * time.Millisecond)
	if f := c.LoadFrac(); f <= 0 {
		t.Fatalf("LoadFrac after fresh observe = %v, want > 0", f)
	}
}
