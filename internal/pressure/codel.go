// Package pressure is the overload-resilience layer shared by the serving
// and mutation paths: a CoDel-style queue-sojourn controller for adaptive
// admission (Codel), a multi-signal load-level monitor that drives brownout
// degradation (Monitor), and per-client token-bucket quotas for write-path
// backpressure (Quota).
//
// The design premise comes from the paper family's anytime invariant: the
// engine can always trade accuracy for latency with a sound error bound, so
// the right response to pressure is graded — serve full answers while
// Nominal, serve cheaper bounded-error answers while Elevated, and shed
// with an honest drain-derived Retry-After only at Critical — instead of a
// single fixed-depth 429 cliff.
package pressure

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Default sojourn-control parameters, CoDel-flavoured: the target is the
// queue wait considered "standing queue" rather than burst absorption, and
// the interval is how long the wait must stay above target before admission
// starts shedding.
const (
	DefaultSojournTarget   = 25 * time.Millisecond
	DefaultSojournInterval = 100 * time.Millisecond

	// drainWindow is the sampling window for the drain-rate estimate.
	drainWindow = 500 * time.Millisecond

	// MaxRetryAfter caps drain-derived Retry-After hints so a momentarily
	// stalled drain estimate cannot push clients away for minutes.
	MaxRetryAfter = 30 * time.Second
)

// Codel is a sojourn-time admission controller in the spirit of CoDel
// (Nichols & Jacobson): instead of shedding on queue *depth* — which
// conflates a harmless burst with a standing queue — it tracks how long
// each admitted task actually waited for a worker. A queue that stays
// above the target wait for a full interval is a standing queue; new
// non-waiting work is then shed at the door until the wait drops below
// target again. It also keeps a windowed drain-rate estimate so shed
// responses can carry an honest Retry-After instead of a constant.
//
// All methods are safe for concurrent use. The zero value is not usable;
// call NewCodel.
type Codel struct {
	target   time.Duration
	interval time.Duration
	now      func() time.Time // injectable clock for deterministic tests

	mu          sync.Mutex
	firstAbove  time.Time // when the wait first exceeded target (zero = it is below)
	lastObserve time.Time
	lastDecay   time.Time // idle-decay cursor; never before lastObserve
	ewma        float64   // smoothed sojourn, seconds

	// drain-rate window: completions are counted per drainWindow and the
	// rate of the last full window is kept.
	winStart time.Time
	winCount int
	rate     float64 // completions/s over the last full window

	overloaded atomic.Bool
	sheds      atomic.Uint64
}

// NewCodel returns a controller with the given target sojourn and overload
// interval (≤ 0 picks the defaults: 25ms target, 100ms interval).
func NewCodel(target, interval time.Duration) *Codel {
	if target <= 0 {
		target = DefaultSojournTarget
	}
	if interval <= 0 {
		interval = DefaultSojournInterval
	}
	return &Codel{target: target, interval: interval, now: time.Now}
}

// Target returns the sojourn target.
func (c *Codel) Target() time.Duration { return c.target }

// Observe records the queue wait of a task that just reached a worker.
// Call it at dequeue time, for every admitted task.
func (c *Codel) Observe(wait time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.lastObserve = now
	// EWMA with alpha 1/4: responsive to a building queue, but one stray
	// slow dequeue does not flip the level.
	c.ewma += 0.25 * (wait.Seconds() - c.ewma)
	if wait < c.target {
		c.firstAbove = time.Time{}
		c.overloaded.Store(false)
		return
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now
		return
	}
	if now.Sub(c.firstAbove) >= c.interval {
		c.overloaded.Store(true)
	}
}

// Complete records one finished task, feeding the drain-rate estimate.
func (c *Codel) Complete() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if c.winStart.IsZero() {
		c.winStart = now
		c.winCount = 1
		return
	}
	c.winCount++
	if el := now.Sub(c.winStart); el >= drainWindow {
		c.rate = float64(c.winCount) / el.Seconds()
		c.winStart, c.winCount = now, 0
	}
}

// Overloaded reports whether admission should shed: the sojourn stayed
// above target for a full interval and has not yet dropped back below it.
// A controller that has seen no dequeue for a while recovers on its own —
// an idle queue is by definition not a standing queue.
func (c *Codel) Overloaded() bool {
	if !c.overloaded.Load() {
		return false
	}
	c.mu.Lock()
	stale := c.now().Sub(c.lastObserve) > 2*c.interval
	c.mu.Unlock()
	if stale {
		c.overloaded.Store(false)
		return false
	}
	return true
}

// Shed counts one admission rejected because of sojourn overload (the pool
// calls it so the counter stays next to the decision).
func (c *Codel) Shed() { c.sheds.Add(1) }

// Sheds returns how many admissions the sojourn controller rejected.
func (c *Codel) Sheds() float64 { return float64(c.sheds.Load()) }

// Sojourn returns the smoothed queue wait.
func (c *Codel) Sojourn() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decayLocked()
	return time.Duration(c.ewma * float64(time.Second))
}

// decayLocked halves the sojourn EWMA for every interval that passed with
// no dequeue to observe. Without it the controller can wedge: a spike
// pushes the EWMA (and so LoadFrac) to Critical, Critical sheds every
// admission, nothing dequeues, and the stale EWMA holds the server in
// Critical with nothing left to refresh it. An idle queue's standing wait
// is zero; the EWMA must converge there on its own.
func (c *Codel) decayLocked() {
	if c.ewma == 0 {
		return
	}
	ref := c.lastObserve
	if c.lastDecay.After(ref) {
		ref = c.lastDecay
	}
	if ref.IsZero() {
		return
	}
	now := c.now()
	for c.ewma > 0 && now.Sub(ref) >= c.interval {
		c.ewma /= 2
		ref = ref.Add(c.interval)
	}
	// Below a microsecond the residue is noise, not a queue; snap to zero.
	if c.ewma < 1e-6 {
		c.ewma = 0
	}
	c.lastDecay = ref
}

// DrainRate returns the observed completion rate in tasks/s (0 until the
// first sampling window fills).
func (c *Codel) DrainRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainRateLocked()
}

func (c *Codel) drainRateLocked() float64 {
	rate := c.rate
	// Early traffic: fold the in-progress window in so the first shed of a
	// cold process does not fall back to the 1s default.
	if rate == 0 && c.winCount > 0 && !c.winStart.IsZero() {
		if el := c.now().Sub(c.winStart); el > 0 {
			rate = float64(c.winCount) / el.Seconds()
		}
	}
	return rate
}

// RetryAfter estimates how long a shed caller should back off before the
// backlog ahead of it can drain: (backlog+1)/drain-rate, rounded up to
// whole seconds (the HTTP Retry-After unit) and clamped to [1s, 30s]. With
// no drain estimate yet it returns the 1s floor.
func (c *Codel) RetryAfter(backlog int) time.Duration {
	c.mu.Lock()
	rate := c.drainRateLocked()
	c.mu.Unlock()
	if rate <= 0 {
		return time.Second
	}
	secs := math.Ceil(float64(backlog+1) / rate)
	d := time.Duration(secs) * time.Second
	if d < time.Second {
		d = time.Second
	}
	if d > MaxRetryAfter {
		d = MaxRetryAfter
	}
	return d
}

// LoadFrac maps the controller's state onto the monitor's [0,1] load
// scale: 1.0 (Critical) at 4× the target sojourn, and at least 0.75
// (Elevated at the default thresholds) whenever sustained overload is
// shedding — a standing queue is never Nominal.
func (c *Codel) LoadFrac() float64 {
	c.mu.Lock()
	c.decayLocked()
	s := c.ewma
	c.mu.Unlock()
	f := s / (4 * c.target.Seconds())
	if c.Overloaded() && f < 0.75 {
		f = 0.75
	}
	return f
}
