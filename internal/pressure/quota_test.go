package pressure

import (
	"fmt"
	"testing"
	"time"
)

func testQuota(rate, burst float64) (*Quota, *fakeClock) {
	clk := newFakeClock()
	q := NewQuota(rate, burst)
	q.now = clk.Now
	return q, clk
}

func TestQuotaBurstThenReject(t *testing.T) {
	q, _ := testQuota(10, 20)
	ok, _ := q.Allow("a", 20)
	if !ok {
		t.Fatal("full burst not admitted from a fresh bucket")
	}
	ok, retry := q.Allow("a", 1)
	if ok {
		t.Fatal("admitted past an empty bucket")
	}
	if retry != time.Second {
		t.Fatalf("retryAfter = %v, want 1s (1 token at 10/s rounds up)", retry)
	}
	if q.Rejects() != 1 {
		t.Fatalf("rejects = %v, want 1", q.Rejects())
	}
}

func TestQuotaRefill(t *testing.T) {
	q, clk := testQuota(10, 20)
	q.Allow("a", 20)
	clk.Advance(time.Second) // +10 tokens
	if ok, _ := q.Allow("a", 10); !ok {
		t.Fatal("refilled tokens not admitted")
	}
	if ok, _ := q.Allow("a", 1); ok {
		t.Fatal("admitted more than the refill")
	}
	// Refill caps at burst.
	clk.Advance(time.Hour)
	if ok, _ := q.Allow("a", 20); !ok {
		t.Fatal("burst-capacity charge rejected after long idle")
	}
	if ok, _ := q.Allow("a", 1); ok {
		t.Fatal("bucket refilled past burst")
	}
}

func TestQuotaRetryAfterScalesWithDeficit(t *testing.T) {
	q, _ := testQuota(10, 20)
	q.Allow("a", 20)
	_, retry := q.Allow("a", 55) // deficit 55 at 10/s -> 6s
	if retry != 6*time.Second {
		t.Fatalf("retryAfter = %v, want 6s", retry)
	}
	_, retry = q.Allow("a", 1e9)
	if retry != MaxRetryAfter {
		t.Fatalf("retryAfter = %v, want clamp to %v", retry, MaxRetryAfter)
	}
}

func TestQuotaClientsIndependent(t *testing.T) {
	q, _ := testQuota(10, 20)
	q.Allow("a", 20)
	if ok, _ := q.Allow("b", 20); !ok {
		t.Fatal("client b throttled by client a's spend")
	}
	if q.Clients() != 2 {
		t.Fatalf("clients = %d, want 2", q.Clients())
	}
}

func TestQuotaDisabled(t *testing.T) {
	q, _ := testQuota(0, 0)
	if ok, retry := q.Allow("a", 1e12); !ok || retry != 0 {
		t.Fatal("rate ≤ 0 must admit everything")
	}
	if q.Clients() != 0 {
		t.Fatal("disabled quota tracked a bucket")
	}
}

func TestQuotaEviction(t *testing.T) {
	q, clk := testQuota(10, 20)
	for i := 0; i < maxQuotaClients; i++ {
		q.Allow(fmt.Sprintf("c%d", i), 1)
		clk.Advance(time.Millisecond)
	}
	if q.Clients() != maxQuotaClients {
		t.Fatalf("clients = %d, want %d", q.Clients(), maxQuotaClients)
	}
	// One more client evicts the longest-idle bucket (c0) instead of growing.
	q.Allow("fresh", 1)
	if q.Clients() != maxQuotaClients {
		t.Fatalf("clients after eviction = %d, want %d", q.Clients(), maxQuotaClients)
	}
	q.mu.Lock()
	_, c0 := q.buckets["c0"]
	_, last := q.buckets[fmt.Sprintf("c%d", maxQuotaClients-1)]
	q.mu.Unlock()
	if c0 {
		t.Fatal("longest-idle bucket survived eviction")
	}
	if !last {
		t.Fatal("recently active bucket was evicted")
	}
}
