package pressure

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// maxQuotaClients bounds the bucket map so an address-spoofing client
// cannot grow it without bound; stalest (fullest) buckets are evicted
// first, which forgets only clients that were not consuming quota anyway.
const maxQuotaClients = 4096

// Quota is a set of per-client token buckets for write-path backpressure:
// each client refills at rate tokens/s up to burst, and a request costing n
// tokens (one per edge edit) is admitted only when the client's bucket
// covers it. Rejections come with the wait until the bucket will, so the
// 429 can carry an honest Retry-After. Safe for concurrent use.
type Quota struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket

	rejects atomic.Uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuota returns a quota set refilling rate tokens/s per client with the
// given burst capacity (≤ 0 = 4× rate, floored at rate so a single
// rate-sized batch is always admissible from a full bucket).
func NewQuota(rate, burst float64) *Quota {
	if burst <= 0 {
		burst = 4 * rate
	}
	if burst < rate {
		burst = rate
	}
	return &Quota{rate: rate, burst: burst, now: time.Now,
		buckets: make(map[string]*bucket)}
}

// Allow charges n tokens to client. When the bucket cannot cover the
// charge nothing is deducted and retryAfter says how long until it could
// (rounded up to whole seconds, clamped to [1s, 30s]). A Quota with
// rate ≤ 0 admits everything.
func (q *Quota) Allow(client string, n float64) (ok bool, retryAfter time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[client]
	if b == nil {
		q.evictLocked()
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	} else {
		b.tokens = math.Min(q.burst, b.tokens+q.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	q.rejects.Add(1)
	secs := math.Ceil((n - b.tokens) / q.rate)
	d := time.Duration(secs) * time.Second
	if d < time.Second {
		d = time.Second
	}
	if d > MaxRetryAfter {
		d = MaxRetryAfter
	}
	return false, d
}

// evictLocked makes room for one more bucket when the map is at capacity,
// dropping the entry that has been idle the longest.
func (q *Quota) evictLocked() {
	if len(q.buckets) < maxQuotaClients {
		return
	}
	var oldest string
	var oldestAt time.Time
	for k, b := range q.buckets {
		if oldest == "" || b.last.Before(oldestAt) {
			oldest, oldestAt = k, b.last
		}
	}
	delete(q.buckets, oldest)
}

// Clients returns how many client buckets are tracked.
func (q *Quota) Clients() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

// Rejects returns how many charges were refused.
func (q *Quota) Rejects() float64 { return float64(q.rejects.Load()) }
