package pressure

import (
	"sync"
	"testing"
	"time"
)

func testMonitor(cfg MonitorConfig) (*Monitor, *fakeClock) {
	clk := newFakeClock()
	m := NewMonitor(cfg)
	m.now = clk.Now
	return m, clk
}

func TestMonitorNoSignalsNominal(t *testing.T) {
	m, _ := testMonitor(MonitorConfig{Refresh: -1})
	if got := m.Level(); got != Nominal {
		t.Fatalf("level with no signals = %v, want Nominal", got)
	}
}

func TestMonitorThresholds(t *testing.T) {
	m, _ := testMonitor(MonitorConfig{Refresh: -1})
	load := 0.0
	var mu sync.Mutex
	m.SetSignal("x", func() float64 { mu.Lock(); defer mu.Unlock(); return load })
	set := func(v float64) { mu.Lock(); load = v; mu.Unlock() }

	for _, tc := range []struct {
		load float64
		want Level
	}{
		{0.0, Nominal}, {0.49, Nominal}, {0.5, Elevated},
		{0.99, Elevated}, {1.0, Critical}, {2.5, Critical}, {0.1, Nominal},
	} {
		set(tc.load)
		if got := m.Level(); got != tc.want {
			t.Fatalf("load %.2f: level = %v, want %v", tc.load, got, tc.want)
		}
	}
}

func TestMonitorWorstSignalWins(t *testing.T) {
	m, _ := testMonitor(MonitorConfig{Refresh: -1})
	m.SetSignal("calm", func() float64 { return 0.1 })
	m.SetSignal("hot", func() float64 { return 1.2 })
	if got := m.Level(); got != Critical {
		t.Fatalf("level = %v, want Critical (worst signal)", got)
	}
	if f := m.Load("hot"); f != 1.2 {
		t.Fatalf("Load(hot) = %v, want 1.2", f)
	}
	// Removing the hot signal must force a re-evaluation.
	m.SetSignal("hot", nil)
	if got := m.Level(); got != Nominal {
		t.Fatalf("level after removing hot signal = %v, want Nominal", got)
	}
	if f := m.Load("hot"); f != 0 {
		t.Fatalf("Load(removed) = %v, want 0", f)
	}
}

func TestMonitorRefreshCaches(t *testing.T) {
	m, clk := testMonitor(MonitorConfig{Refresh: 100 * time.Millisecond})
	calls := 0
	m.SetSignal("x", func() float64 { calls++; return 0 })
	m.Level()
	m.Level()
	m.Level()
	if calls != 1 {
		t.Fatalf("signal evaluated %d times inside one refresh window, want 1", calls)
	}
	clk.Advance(150 * time.Millisecond)
	m.Level()
	if calls != 2 {
		t.Fatalf("signal evaluated %d times after window expiry, want 2", calls)
	}
}

func TestMonitorSnapshot(t *testing.T) {
	m, _ := testMonitor(MonitorConfig{Refresh: -1})
	m.SetSignal("a", func() float64 { return 0.7 })
	lvl, loads := m.Snapshot()
	if lvl != Elevated {
		t.Fatalf("snapshot level = %v, want Elevated", lvl)
	}
	if loads["a"] != 0.7 {
		t.Fatalf("snapshot loads = %v", loads)
	}
	// The returned map is a copy.
	loads["a"] = 99
	if f := m.Load("a"); f != 0.7 {
		t.Fatalf("internal load mutated through snapshot copy: %v", f)
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{
		Nominal: "nominal", Elevated: "elevated", Critical: "critical",
	} {
		if got := lvl.String(); got != want {
			t.Fatalf("Level(%d).String() = %q, want %q", lvl, got, want)
		}
	}
}

func TestHeapFrac(t *testing.T) {
	f := HeapFrac(1 << 40) // 1 TiB soft limit: tiny fraction, but > 0
	got := f()
	if got <= 0 || got >= 1 {
		t.Fatalf("HeapFrac(1TiB) = %v, want in (0,1)", got)
	}
}
