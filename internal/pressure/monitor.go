package pressure

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Level is the aggregated load level the serving layer degrades by.
type Level int32

const (
	// Nominal: serve full-quality answers.
	Nominal Level = iota
	// Elevated: brownout — tighten per-query deadlines so the anytime
	// machinery serves cheaper degraded (206) answers with sound bounds
	// instead of queueing toward collapse.
	Elevated
	// Critical: shed new non-waiting work (429 + drain-derived
	// Retry-After); cache hits keep serving so goodput never hits zero.
	Critical
)

func (l Level) String() string {
	switch l {
	case Elevated:
		return "elevated"
	case Critical:
		return "critical"
	default:
		return "nominal"
	}
}

// MonitorConfig tunes a Monitor. The zero value is usable: Elevated at a
// 0.5 load fraction, Critical at 1.0, signals re-evaluated at most every
// 100ms.
type MonitorConfig struct {
	// ElevatedAt / CriticalAt are thresholds on the maximum signal load
	// fraction (≤ 0 = 0.5 / 1.0). Signals are normalized so 1.0 means
	// "this resource is at its configured limit".
	ElevatedAt, CriticalAt float64
	// Refresh bounds how often the signal set is re-evaluated; between
	// refreshes Level returns the cached value so the per-request cost is
	// one atomic load (≤ 0 = 100ms; use a negative Refresh in tests to
	// evaluate on every call).
	Refresh time.Duration
}

// Monitor aggregates named load signals — queue sojourn, pending-edit
// watermark, heap bytes — into one Level. Each signal is a function
// returning a load fraction where ≥ 1.0 means the resource is at its
// limit; the monitor's level is driven by the worst signal. Safe for
// concurrent use; evaluation is rate-limited by Refresh so Level can sit
// on the per-request hot path.
type Monitor struct {
	cfg MonitorConfig
	now func() time.Time

	mu      sync.Mutex
	signals map[string]func() float64
	loads   map[string]float64 // last evaluated fraction per signal

	level     atomic.Int32
	lastNanos atomic.Int64 // unix nanos of the last evaluation
}

// NewMonitor returns a monitor with no signals (Level = Nominal).
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.ElevatedAt <= 0 {
		cfg.ElevatedAt = 0.5
	}
	if cfg.CriticalAt <= 0 {
		cfg.CriticalAt = 1.0
	}
	if cfg.Refresh == 0 {
		cfg.Refresh = 100 * time.Millisecond
	}
	return &Monitor{
		cfg:     cfg,
		now:     time.Now,
		signals: make(map[string]func() float64),
		loads:   make(map[string]float64),
	}
}

// SetSignal registers (or replaces) the named signal; a nil fn removes it.
// Signal functions must be safe for concurrent use and cheap enough to run
// every Refresh.
func (m *Monitor) SetSignal(name string, fn func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fn == nil {
		delete(m.signals, name)
		delete(m.loads, name)
	} else {
		m.signals[name] = fn
	}
	// Force the next Level call to re-evaluate with the new signal set.
	m.lastNanos.Store(0)
}

// Level returns the current aggregated load level, re-evaluating the
// signals when the cached value is older than Refresh.
func (m *Monitor) Level() Level {
	if last := m.lastNanos.Load(); last != 0 &&
		m.now().Sub(time.Unix(0, last)) < m.cfg.Refresh {
		return Level(m.level.Load())
	}
	return m.refresh()
}

func (m *Monitor) refresh() Level {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Another caller may have refreshed while we waited for the lock.
	if last := m.lastNanos.Load(); last != 0 &&
		m.now().Sub(time.Unix(0, last)) < m.cfg.Refresh {
		return Level(m.level.Load())
	}
	worst := 0.0
	for name, fn := range m.signals {
		f := fn()
		m.loads[name] = f
		if f > worst {
			worst = f
		}
	}
	lvl := Nominal
	switch {
	case worst >= m.cfg.CriticalAt:
		lvl = Critical
	case worst >= m.cfg.ElevatedAt:
		lvl = Elevated
	}
	m.level.Store(int32(lvl))
	m.lastNanos.Store(m.now().UnixNano())
	return lvl
}

// Load returns the last evaluated fraction of the named signal (0 when the
// signal is absent or not yet evaluated).
func (m *Monitor) Load(name string) float64 {
	m.Level() // make sure the cache is not arbitrarily stale
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.loads[name]
}

// Snapshot returns the current level plus a copy of every signal's last
// evaluated load fraction, for stats endpoints.
func (m *Monitor) Snapshot() (Level, map[string]float64) {
	lvl := m.Level()
	m.mu.Lock()
	defer m.mu.Unlock()
	loads := make(map[string]float64, len(m.loads))
	for k, v := range m.loads {
		loads[k] = v
	}
	return lvl, loads
}

// HeapFrac returns a signal reading the live heap against a soft limit in
// bytes. ReadMemStats is not free, which is exactly why Monitor evaluates
// signals at most once per Refresh.
func HeapFrac(softLimit int64) func() float64 {
	return func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc) / float64(softLimit)
	}
}
