package dataset

import (
	"math"
	"testing"
)

func TestNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("registry has %d entries, want 8", len(names))
	}
	for _, name := range names {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("want error for unknown name")
	}
}

func TestCoreNamesExist(t *testing.T) {
	for _, name := range CoreNames() {
		if _, err := Lookup(name); err != nil {
			t.Errorf("core dataset %q missing: %v", name, err)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustBuild("dblp-s", 0.02)
	b := MustBuild("dblp-s", 0.02)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("builds differ")
	}
}

func TestBuildScales(t *testing.T) {
	small := MustBuild("webstan-s", 0.02)
	big := MustBuild("webstan-s", 0.05)
	if big.N() <= small.N() {
		t.Fatalf("scale not honoured: %d vs %d", big.N(), small.N())
	}
}

func TestBuildMinimumSize(t *testing.T) {
	g := MustBuild("webstan-s", 1e-9)
	if g.N() < 64 {
		t.Fatalf("n=%d below floor", g.N())
	}
}

func TestDensityRoughlyMatchesPaper(t *testing.T) {
	// The stand-ins should land within 2x of the paper's m/n; R-MAT dedup
	// loses some edges on small scales, hence the loose factor.
	for _, name := range []string{"dblp-s", "webstan-s", "pokec-s", "orkut-s"} {
		g, info, err := Build(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		ratio := g.AvgDegree() / info.MNRatio
		if math.IsNaN(ratio) || ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: m/n=%.1f vs paper %.1f (ratio %.2f)", name, g.AvgDegree(), info.MNRatio, ratio)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, _, err := Build("unknown", 1); err == nil {
		t.Fatal("want error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on unknown")
		}
	}()
	MustBuild("unknown", 1)
}

func TestHParameterMatchesTable2(t *testing.T) {
	want := map[string]int{"dblp-s": 3, "webstan-s": 2, "pokec-s": 2, "lj-s": 2,
		"orkut-s": 2, "twitter-s": 2, "friendster-s": 2}
	for name, h := range want {
		info, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.H != h {
			t.Errorf("%s: h=%d, want %d", name, info.H, h)
		}
	}
}
