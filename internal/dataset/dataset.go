// Package dataset provides named synthetic stand-ins for the paper's seven
// benchmark graphs (Table II) plus the Facebook graph of the community-
// detection study. The real SNAP graphs are neither redistributable nor
// laptop-sized; each stand-in matches the original's average degree m/n and
// broad degree shape at a configurable scale (DESIGN.md §4 records the
// substitution argument). Names carry an "-s" suffix ("scaled") to make the
// substitution visible in every table.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

// Info describes one registry entry.
type Info struct {
	// Name is the registry key, e.g. "dblp-s".
	Name string
	// PaperName is the corresponding graph in Table II.
	PaperName string
	// H is the per-dataset hop parameter from Table II's last column.
	H int
	// MNRatio is the m/n the original graph has (Table II).
	MNRatio float64
	// BaseN is the node count at scale 1.
	BaseN int

	build func(n int, seed uint64) *graph.Graph
}

var registry = []Info{
	{
		Name: "dblp-s", PaperName: "DBLP", H: 3, MNRatio: 6.6, BaseN: 32000,
		build: func(n int, seed uint64) *graph.Graph {
			g, _ := gen.PlantedCommunities(n, 50, 6, 1, seed)
			return g
		},
	},
	{
		Name: "webstan-s", PaperName: "Web-Stan", H: 2, MNRatio: 8.2, BaseN: 16000,
		build: func(n int, seed uint64) *graph.Graph {
			return gen.BarabasiAlbert(n, 4, seed)
		},
	},
	{
		Name: "pokec-s", PaperName: "Pokec", H: 2, MNRatio: 18.8, BaseN: 16384,
		build: func(n int, seed uint64) *graph.Graph {
			return gen.RMAT(log2ceil(n), 19, seed)
		},
	},
	{
		Name: "lj-s", PaperName: "LJ", H: 2, MNRatio: 17.4, BaseN: 32768,
		build: func(n int, seed uint64) *graph.Graph {
			return gen.RMAT(log2ceil(n), 17, seed)
		},
	},
	{
		Name: "orkut-s", PaperName: "Orkut", H: 2, MNRatio: 38.1, BaseN: 16384,
		build: func(n int, seed uint64) *graph.Graph {
			return gen.RMAT(log2ceil(n), 38, seed)
		},
	},
	{
		Name: "twitter-s", PaperName: "Twitter", H: 2, MNRatio: 35.3, BaseN: 65536,
		build: func(n int, seed uint64) *graph.Graph {
			return gen.RMAT(log2ceil(n), 35, seed)
		},
	},
	{
		Name: "friendster-s", PaperName: "Friendster", H: 2, MNRatio: 38.1, BaseN: 131072,
		build: func(n int, seed uint64) *graph.Graph {
			return gen.RMAT(log2ceil(n), 38, seed)
		},
	},
	{
		Name: "facebook-s", PaperName: "Facebook", H: 2, MNRatio: 43.7, BaseN: 4000,
		build: func(n int, seed uint64) *graph.Graph {
			g, _ := gen.PlantedCommunities(n, 40, 20, 3, seed)
			return g
		},
	},
}

// Names returns the registry keys in a stable order.
func Names() []string {
	out := make([]string, len(registry))
	for i, info := range registry {
		out[i] = info.Name
	}
	sort.Strings(out)
	return out
}

// CoreNames returns the six datasets the main query-time tables use
// (Table III / Table VII order, Friendster excluded as in Table VII).
func CoreNames() []string {
	return []string{"dblp-s", "webstan-s", "pokec-s", "lj-s", "orkut-s", "twitter-s"}
}

// Lookup returns the registry entry for name.
func Lookup(name string) (Info, error) {
	for _, info := range registry {
		if info.Name == name {
			return info, nil
		}
	}
	return Info{}, fmt.Errorf("dataset: unknown name %q (have %v)", name, Names())
}

// Build constructs the named dataset at the given scale (node count is
// BaseN·scale, minimum 64). Construction is deterministic.
func Build(name string, scale float64) (*graph.Graph, Info, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, Info{}, err
	}
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(info.BaseN) * scale)
	if n < 64 {
		n = 64
	}
	g := info.build(n, seedFor(name))
	return g, info, nil
}

// MustBuild is Build for known-good names; it panics on error.
func MustBuild(name string, scale float64) *graph.Graph {
	g, _, err := Build(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

func log2ceil(n int) int {
	s := int(math.Ceil(math.Log2(float64(n))))
	if s < 6 {
		s = 6
	}
	return s
}

// seedFor derives a stable per-dataset seed so different datasets are not
// accidentally correlated.
func seedFor(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
