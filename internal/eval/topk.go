package eval

// topk.go implements O(n log k) top-k selection with a bounded min-heap.
// Rankings are what every consumer of an SSRWR answer actually wants
// (recommendation, community seeds, NDCG), and sorting all n scores to
// extract k ≪ n of them dominated profile time on the larger graphs.

// heapEntry orders by (score asc, id desc) so the heap root is the entry
// to evict: the smallest score, with the LARGEST id among ties, making the
// final ranking identical to a full sort with (score desc, id asc).
type heapEntry struct {
	id    int32
	score float64
}

func worse(a, b heapEntry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.id > b.id
}

// selectTopK returns the k entries with the highest scores in descending
// order (ties by smaller id), visiting each score exactly once.
func selectTopK(scores []float64, k int) []heapEntry {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	heap := make([]heapEntry, 0, k)
	push := func(e heapEntry) {
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && worse(heap[l], heap[small]) {
				small = l
			}
			if r < len(heap) && worse(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for id, s := range scores {
		e := heapEntry{int32(id), s}
		if len(heap) < k {
			push(e)
			continue
		}
		if worse(heap[0], e) {
			heap[0] = e
			siftDown()
		}
	}
	// Pop everything; entries come out worst-first.
	out := make([]heapEntry, len(heap))
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = heap[0]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		siftDown()
	}
	return out
}
