package eval

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// referenceTopK is the straightforward full-sort implementation the heap
// must match exactly.
func referenceTopK(scores []float64, k int) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

func TestSelectTopKMatchesReference(t *testing.T) {
	check := func(raw []float64, kRaw uint8) bool {
		scores := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			scores[i] = math.Mod(x, 100)
		}
		k := int(kRaw % 20)
		got := TopK(scores, k)
		want := referenceTopK(scores, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectTopKTies(t *testing.T) {
	scores := []float64{5, 5, 5, 5, 5}
	got := TopK(scores, 3)
	for i, want := range []int32{0, 1, 2} {
		if got[i] != want {
			t.Fatalf("tie-break broke: %v", got)
		}
	}
}

func TestSelectTopKAllAndNone(t *testing.T) {
	scores := []float64{3, 1, 2}
	if got := TopK(scores, 3); got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("full selection wrong: %v", got)
	}
	if TopK(scores, 0) != nil || TopK(nil, 5) != nil {
		t.Fatal("degenerate cases should be nil")
	}
}

func BenchmarkTopKHeap(b *testing.B) {
	scores := make([]float64, 100000)
	for i := range scores {
		scores[i] = math.Sin(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(scores, 10)
	}
}

func BenchmarkTopKReferenceSort(b *testing.B) {
	scores := make([]float64, 100000)
	for i := range scores {
		scores[i] = math.Sin(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceTopK(scores, 10)
	}
}
