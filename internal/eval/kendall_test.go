package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKendallTauPerfectAndReversed(t *testing.T) {
	truth := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	if got := KendallTauTopK(truth, truth, 5); got != 1 {
		t.Fatalf("identical order tau=%v", got)
	}
	rev := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if got := KendallTauTopK(truth, rev, 5); got != -1 {
		t.Fatalf("reversed order tau=%v", got)
	}
}

func TestKendallTauPartial(t *testing.T) {
	truth := []float64{4, 3, 2, 1}
	est := []float64{4, 2, 3, 1} // one adjacent swap: 5 concordant, 1 discordant
	want := (5.0 - 1.0) / 6.0
	if got := KendallTauTopK(truth, est, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tau=%v, want %v", got, want)
	}
}

func TestKendallTauTiesAndDegenerate(t *testing.T) {
	truth := []float64{3, 2, 1}
	flat := []float64{1, 1, 1}
	if got := KendallTauTopK(truth, flat, 3); got != 0 {
		t.Fatalf("all-tied estimate tau=%v, want 0", got)
	}
	if got := KendallTauTopK(truth, truth, 1); got != 1 {
		t.Fatalf("k=1 tau=%v", got)
	}
}

func TestKendallTauRangeProperty(t *testing.T) {
	check := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		norm := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(math.Abs(x), 1)
		}
		ta := make([]float64, n)
		tb := make([]float64, n)
		for i := 0; i < n; i++ {
			ta[i], tb[i] = norm(a[i]), norm(b[i])
		}
		tau := KendallTauTopK(ta, tb, n)
		return tau >= -1-1e-12 && tau <= 1+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
