package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.3, 0.5, 0.0}
	top := TopK(scores, 3)
	// Ties broken by smaller index: 1 before 3.
	want := []int32{1, 3, 2}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK=%v, want %v", top, want)
		}
	}
	if got := TopK(scores, 100); len(got) != len(scores) {
		t.Fatal("k>n should clamp")
	}
	if TopK(scores, 0) != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestAbsErrAtKth(t *testing.T) {
	truth := []float64{0.5, 0.3, 0.2}
	est := []float64{0.5, 0.25, 0.2}
	if got := AbsErrAtKth(truth, est, 2); math.Abs(got-0.05) > 1e-15 {
		t.Fatalf("got %v, want 0.05", got)
	}
	if !math.IsNaN(AbsErrAtKth(truth, est, 0)) || !math.IsNaN(AbsErrAtKth(truth, est, 4)) {
		t.Fatal("out-of-range k should be NaN")
	}
}

func TestErrMetrics(t *testing.T) {
	truth := []float64{1, 2, 3}
	est := []float64{1.5, 2, 2}
	if got := MaxAbsErr(truth, est); got != 1 {
		t.Fatalf("MaxAbsErr=%v", got)
	}
	if got := MeanAbsErr(truth, est); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("MeanAbsErr=%v", got)
	}
	if got := MaxRelErrAbove(truth, est, 1.5); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("MaxRelErrAbove=%v", got)
	}
	// delta filters out every node -> 0.
	if got := MaxRelErrAbove(truth, est, 10); got != 0 {
		t.Fatalf("filtered MaxRelErrAbove=%v", got)
	}
	if MeanAbsErr(nil, nil) != 0 {
		t.Fatal("empty MeanAbsErr")
	}
}

func TestNDCGPerfectAndRange(t *testing.T) {
	truth := []float64{0.4, 0.3, 0.2, 0.1}
	if got := NDCG(truth, truth, 4); math.Abs(got-1) > 1e-15 {
		t.Fatalf("perfect NDCG=%v", got)
	}
	// A reversed ranking scores below 1.
	rev := []float64{0.1, 0.2, 0.3, 0.4}
	got := NDCG(truth, rev, 4)
	if got >= 1 || got <= 0 {
		t.Fatalf("reversed NDCG=%v", got)
	}
	// Property: NDCG in [0,1] for random inputs.
	check := func(a, b []float64) bool {
		if len(a) != len(b) {
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			a, b = a[:n], b[:n]
		}
		if len(a) == 0 {
			return true
		}
		// NDCG consumes probability-like gains; fold inputs into [0,1).
		norm := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Abs(math.Mod(x, 1))
		}
		for i := range a {
			a[i] = norm(a[i])
			b[i] = norm(b[i])
		}
		v := NDCG(a, b, 3)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecision(t *testing.T) {
	truth := []float64{0.4, 0.3, 0.2, 0.1}
	est := []float64{0.4, 0.1, 0.3, 0.2}
	if got := Precision(truth, est, 2); got != 0.5 {
		t.Fatalf("Precision=%v, want 0.5", got)
	}
	if got := Precision(truth, truth, 4); got != 1 {
		t.Fatalf("perfect precision=%v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-15 || math.Abs(s.Mean-2.5) > 1e-15 {
		t.Fatalf("median/mean: %+v", s)
	}
	if math.Abs(s.Q1-1.75) > 1e-15 || math.Abs(s.Q3-3.25) > 1e-15 {
		t.Fatalf("quartiles: %+v", s)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std=%v, want %v", s.Std, wantStd)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}
