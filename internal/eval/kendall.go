package eval

// KendallTauTopK measures rank agreement between an estimate and the
// ground truth over the truth's top-k nodes: the Kendall tau-a coefficient
// of the estimated scores restricted to those nodes, in [-1, 1] (1 =
// identical order, -1 = reversed). PPR evaluations use it alongside NDCG
// because NDCG is gain-weighted and forgives tail swaps that tau exposes.
func KendallTauTopK(truth, est []float64, k int) float64 {
	nodes := TopK(truth, k)
	n := len(nodes)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Truth order is nodes[i] before nodes[j] (strictly higher or
			// tie-broken); the pair agrees when the estimate ranks them
			// the same way.
			a, b := est[nodes[i]], est[nodes[j]]
			switch {
			case a > b:
				concordant++
			case a < b:
				discordant++
				// equal estimates count as neither
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}
