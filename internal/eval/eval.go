// Package eval implements the accuracy metrics of the paper's evaluation:
// the absolute error of the k-th largest RWR value (Fig. 4 protocol,
// following TopPPR), NDCG@k (Fig. 5), and the boxplot / error-bar summary
// statistics of the outlier study (Figs. 7-10).
package eval

import (
	"math"
	"sort"
)

// TopK returns the indices of the k largest scores in decreasing order,
// ties broken by smaller index first (deterministic). k is clamped to
// len(scores). Selection is O(n log k) via a bounded heap, not a full sort.
func TopK(scores []float64, k int) []int32 {
	entries := selectTopK(scores, k)
	if entries == nil {
		return nil
	}
	out := make([]int32, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// AbsErrAtKth returns |est[t] − truth[t]| where t is the node holding the
// k-th largest ground-truth value (1-based k). This is the per-query
// quantity Fig. 4 averages. It returns NaN when k is out of range.
func AbsErrAtKth(truth, est []float64, k int) float64 {
	if k < 1 || k > len(truth) || len(truth) != len(est) {
		return math.NaN()
	}
	order := TopK(truth, k)
	t := order[k-1]
	return math.Abs(est[t] - truth[t])
}

// MaxAbsErr returns max_t |est[t] − truth[t]|.
func MaxAbsErr(truth, est []float64) float64 {
	worst := 0.0
	for i := range truth {
		if d := math.Abs(est[i] - truth[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// MeanAbsErr returns the mean absolute error over all nodes.
func MeanAbsErr(truth, est []float64) float64 {
	if len(truth) == 0 {
		return 0
	}
	total := 0.0
	for i := range truth {
		total += math.Abs(est[i] - truth[i])
	}
	return total / float64(len(truth))
}

// MaxRelErrAbove returns the maximum relative error over nodes whose true
// value exceeds delta — the quantity Definition 1 bounds by ε.
func MaxRelErrAbove(truth, est []float64, delta float64) float64 {
	worst := 0.0
	for i := range truth {
		if truth[i] > delta {
			if rel := math.Abs(est[i]-truth[i]) / truth[i]; rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

// NDCG returns the normalized discounted cumulative gain of the estimate's
// top-k ranking against the ground truth's ideal ranking, using the true
// RWR values as gains (the protocol of TopPPR / Fig. 5). The result is in
// [0,1]; 1 means the estimate orders the top-k perfectly (or equivalently
// picks nodes with the same gains).
func NDCG(truth, est []float64, k int) float64 {
	if len(truth) == 0 || len(truth) != len(est) {
		return math.NaN()
	}
	got := TopK(est, k)
	ideal := TopK(truth, k)
	dcg, idcg := 0.0, 0.0
	for i := range ideal {
		disc := 1.0 / math.Log2(float64(i)+2)
		idcg += truth[ideal[i]] * disc
		if i < len(got) {
			dcg += truth[got[i]] * disc
		}
	}
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

// Precision returns |top-k(est) ∩ top-k(truth)| / k.
func Precision(truth, est []float64, k int) float64 {
	got := TopK(est, k)
	ideal := TopK(truth, k)
	in := make(map[int32]struct{}, len(ideal))
	for _, v := range ideal {
		in[v] = struct{}{}
	}
	hit := 0
	for _, v := range got {
		if _, ok := in[v]; ok {
			hit++
		}
	}
	if len(ideal) == 0 {
		return 1
	}
	return float64(hit) / float64(len(ideal))
}

// Summary holds the distribution statistics of Figs. 7-10: the boxplot
// five-number summary plus mean and standard deviation.
type Summary struct {
	Min, Q1, Median, Q3, Max float64
	Mean, Std                float64
	N                        int
}

// Summarize computes a Summary of xs (which it does not modify). Quartiles
// use linear interpolation between order statistics. An empty input yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		pos := p * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return sorted[lo]
		}
		frac := pos - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	s := Summary{
		Min:    sorted[0],
		Q1:     q(0.25),
		Median: q(0.5),
		Q3:     q(0.75),
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}
	for _, x := range sorted {
		s.Mean += x
	}
	s.Mean /= float64(len(sorted))
	for _, x := range sorted {
		d := x - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(sorted)))
	return s
}
