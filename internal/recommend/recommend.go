// Package recommend builds the real-time recommendation application the
// paper's introduction motivates (§I, citing Pixie): items are recommended
// to a user by their RWR proximity on the user-item interaction graph. It
// provides a bipartite-graph builder, a planted-preference generator with
// a held-out test set, the RWR recommender itself (pluggable SSRWR
// solver), and the standard offline metrics (hit rate, MRR, popularity and
// random baselines).
package recommend

import (
	"errors"
	"fmt"

	"resacc/internal/algo"
	"resacc/internal/eval"
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Bipartite is a user-item interaction graph: users occupy node ids
// [0,Users), items [Users, Users+Items), and every interaction appears as
// an edge in both directions so walks alternate sides.
type Bipartite struct {
	Graph *graph.Graph
	Users int
	Items int
}

// ItemID returns the node id of the i-th item.
func (b *Bipartite) ItemID(i int) int32 { return int32(b.Users + i) }

// IsItem reports whether a node id denotes an item.
func (b *Bipartite) IsItem(v int32) bool { return int(v) >= b.Users }

// Interaction is one held-out (user, item) pair.
type Interaction struct {
	User int32
	Item int32
}

// Synthetic generates a planted-preference dataset: users and items are
// split into `groups` taste clusters, a user interacts mostly with items
// of their own cluster (probability inCluster) and uniformly otherwise.
// holdout interactions per user are withheld from the graph and returned
// as the test set — the recommender's job is to rank them highly.
func Synthetic(users, items, groups, perUser, holdout int, inCluster float64, seed uint64) (*Bipartite, []Interaction, error) {
	if users <= 0 || items <= 0 || groups <= 0 {
		return nil, nil, errors.New("recommend: users, items and groups must be positive")
	}
	if perUser <= holdout {
		return nil, nil, fmt.Errorf("recommend: perUser %d must exceed holdout %d", perUser, holdout)
	}
	if items/groups < perUser {
		return nil, nil, fmt.Errorf("recommend: clusters of %d items cannot support %d interactions per user", items/groups, perUser)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(users + items)
	var test []Interaction
	seen := make(map[int64]bool)
	for u := 0; u < users; u++ {
		cluster := u % groups
		picked := 0
		for picked < perUser {
			var item int
			if r.Float64() < inCluster {
				// Items are striped over clusters the same way users are.
				item = cluster + groups*r.Intn(items/groups)
			} else {
				item = r.Intn(items)
			}
			key := int64(u)*int64(items) + int64(item)
			if seen[key] {
				continue
			}
			seen[key] = true
			picked++
			itemNode := int32(users + item)
			if picked <= holdout {
				test = append(test, Interaction{User: int32(u), Item: itemNode})
				continue
			}
			b.AddUndirected(int32(u), itemNode)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return &Bipartite{Graph: g, Users: users, Items: items}, test, nil
}

// Recommender ranks unseen items for a user by RWR proximity.
type Recommender struct {
	// Solver computes the SSRWR query; nil is rejected (pass
	// core.Solver{} for ResAcc or any baseline).
	Solver algo.SingleSource
	// Params are the SSRWR parameters for the interaction graph.
	Params algo.Params
}

// Recommend returns the top-k unseen items for user, best first.
func (rec *Recommender) Recommend(b *Bipartite, user int32, k int) ([]int32, error) {
	if rec.Solver == nil {
		return nil, errors.New("recommend: nil Solver")
	}
	if user < 0 || int(user) >= b.Users {
		return nil, fmt.Errorf("recommend: user %d out of range [0,%d)", user, b.Users)
	}
	scores, err := rec.Solver.SingleSource(b.Graph, user, rec.Params)
	if err != nil {
		return nil, err
	}
	seen := make(map[int32]bool, b.Graph.OutDegree(user))
	for _, v := range b.Graph.Out(user) {
		seen[v] = true
	}
	// Rank items only, excluding already-consumed ones. Over-fetch so the
	// filtering cannot starve the result.
	ranked := eval.TopK(scores, k+len(seen)+b.Users)
	out := make([]int32, 0, k)
	for _, v := range ranked {
		if !b.IsItem(v) || seen[v] {
			continue
		}
		out = append(out, v)
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// Metrics is the offline evaluation result over a held-out test set.
type Metrics struct {
	// HitRate is the fraction of held-out interactions whose item appears
	// in the user's top-k.
	HitRate float64
	// MRR is the mean reciprocal rank of held-out items (0 when missed).
	MRR float64
	// Evaluated is the number of held-out interactions scored.
	Evaluated int
}

// Evaluate scores the recommender on a held-out set at cutoff k. Users are
// deduplicated: one query per distinct user.
func Evaluate(b *Bipartite, rec *Recommender, test []Interaction, k int) (Metrics, error) {
	var m Metrics
	byUser := make(map[int32][]int32)
	for _, t := range test {
		byUser[t.User] = append(byUser[t.User], t.Item)
	}
	for user, items := range byUser {
		top, err := rec.Recommend(b, user, k)
		if err != nil {
			return m, err
		}
		rank := make(map[int32]int, len(top))
		for i, v := range top {
			rank[v] = i + 1
		}
		for _, item := range items {
			m.Evaluated++
			if r, ok := rank[item]; ok {
				m.HitRate++
				m.MRR += 1.0 / float64(r)
			}
		}
	}
	if m.Evaluated > 0 {
		m.HitRate /= float64(m.Evaluated)
		m.MRR /= float64(m.Evaluated)
	}
	return m, nil
}

// PopularityBaseline recommends the globally most-interacted unseen items;
// the classic non-personalized control.
func PopularityBaseline(b *Bipartite, user int32, k int) []int32 {
	seen := make(map[int32]bool)
	for _, v := range b.Graph.Out(user) {
		seen[v] = true
	}
	scores := make([]float64, b.Graph.N())
	for i := 0; i < b.Items; i++ {
		id := b.ItemID(i)
		scores[id] = float64(b.Graph.InDegree(id))
	}
	ranked := eval.TopK(scores, k+len(seen))
	out := make([]int32, 0, k)
	for _, v := range ranked {
		if !b.IsItem(v) || seen[v] {
			continue
		}
		out = append(out, v)
		if len(out) == k {
			break
		}
	}
	return out
}

// EvaluateBaseline scores a non-personalized ranking function the same way
// Evaluate scores the recommender.
func EvaluateBaseline(b *Bipartite, test []Interaction, k int, rank func(user int32, k int) []int32) Metrics {
	var m Metrics
	byUser := make(map[int32][]int32)
	for _, t := range test {
		byUser[t.User] = append(byUser[t.User], t.Item)
	}
	for user, items := range byUser {
		top := rank(user, k)
		pos := make(map[int32]int, len(top))
		for i, v := range top {
			pos[v] = i + 1
		}
		for _, item := range items {
			m.Evaluated++
			if r, ok := pos[item]; ok {
				m.HitRate++
				m.MRR += 1.0 / float64(r)
			}
		}
	}
	if m.Evaluated > 0 {
		m.HitRate /= float64(m.Evaluated)
		m.MRR /= float64(m.Evaluated)
	}
	return m
}
