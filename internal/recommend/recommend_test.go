package recommend

import (
	"testing"

	"resacc/internal/algo"
	"resacc/internal/core"
)

func dataset(t *testing.T) (*Bipartite, []Interaction) {
	t.Helper()
	b, test, err := Synthetic(200, 400, 8, 12, 2, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	return b, test
}

func TestSyntheticShape(t *testing.T) {
	b, test := dataset(t)
	if b.Graph.N() != 600 {
		t.Fatalf("n=%d", b.Graph.N())
	}
	// 10 kept interactions per user, both directions.
	if b.Graph.M() != 200*10*2 {
		t.Fatalf("m=%d", b.Graph.M())
	}
	if len(test) != 200*2 {
		t.Fatalf("test size=%d", len(test))
	}
	for _, tr := range test {
		if !b.IsItem(tr.Item) || b.IsItem(tr.User) {
			t.Fatal("test pair sides wrong")
		}
		if b.Graph.HasEdge(tr.User, tr.Item) {
			t.Fatal("held-out interaction leaked into the graph")
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, _, err := Synthetic(0, 10, 2, 5, 1, 0.9, 1); err == nil {
		t.Error("want users error")
	}
	if _, _, err := Synthetic(10, 10, 2, 3, 3, 0.9, 1); err == nil {
		t.Error("want perUser<=holdout error")
	}
	if _, _, err := Synthetic(10, 10, 2, 9, 1, 0.9, 1); err == nil {
		t.Error("want cluster-too-small error")
	}
}

func TestRecommendExcludesSeenAndUsers(t *testing.T) {
	b, _ := dataset(t)
	rec := &Recommender{Solver: core.Solver{}, Params: algo.DefaultParams(b.Graph)}
	top, err := rec.Recommend(b, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("got %d recommendations", len(top))
	}
	seen := map[int32]bool{}
	for _, v := range b.Graph.Out(3) {
		seen[v] = true
	}
	for _, v := range top {
		if !b.IsItem(v) {
			t.Fatalf("recommended a user: %d", v)
		}
		if seen[v] {
			t.Fatalf("recommended an already-consumed item: %d", v)
		}
	}
}

func TestRecommendValidation(t *testing.T) {
	b, _ := dataset(t)
	rec := &Recommender{Solver: core.Solver{}, Params: algo.DefaultParams(b.Graph)}
	if _, err := rec.Recommend(b, int32(b.Users), 5); err == nil {
		t.Error("want user range error (items are not users)")
	}
	bad := &Recommender{Params: algo.DefaultParams(b.Graph)}
	if _, err := bad.Recommend(b, 0, 5); err == nil {
		t.Error("want nil solver error")
	}
}

func TestRWRBeatsPopularityOnPlantedData(t *testing.T) {
	// The planted clusters make personalization matter: popularity cannot
	// know a user's taste cluster, RWR can.
	b, test := dataset(t)
	p := algo.DefaultParams(b.Graph)
	p.Seed = 3
	rec := &Recommender{Solver: core.Solver{}, Params: p}
	const k = 30
	rwr, err := Evaluate(b, rec, test, k)
	if err != nil {
		t.Fatal(err)
	}
	pop := EvaluateBaseline(b, test, k, func(user int32, k int) []int32 {
		return PopularityBaseline(b, user, k)
	})
	if rwr.Evaluated != pop.Evaluated || rwr.Evaluated == 0 {
		t.Fatalf("evaluation sizes differ: %d vs %d", rwr.Evaluated, pop.Evaluated)
	}
	if rwr.HitRate <= pop.HitRate {
		t.Fatalf("RWR hit rate %.3f not above popularity %.3f", rwr.HitRate, pop.HitRate)
	}
	if rwr.MRR <= pop.MRR {
		t.Fatalf("RWR MRR %.3f not above popularity %.3f", rwr.MRR, pop.MRR)
	}
	// Sanity: personalization should be decisively better on 90%-in-cluster data.
	if rwr.HitRate < 0.2 {
		t.Fatalf("RWR hit rate implausibly low: %.3f", rwr.HitRate)
	}
}

func TestEvaluateEmptyTestSet(t *testing.T) {
	b, _ := dataset(t)
	rec := &Recommender{Solver: core.Solver{}, Params: algo.DefaultParams(b.Graph)}
	m, err := Evaluate(b, rec, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Evaluated != 0 || m.HitRate != 0 {
		t.Fatal("empty test set should give zero metrics")
	}
}
