package resacc

import (
	"context"
	"math"
	"sync"
	"testing"
)

// TestEngineConcurrentQueriesSharedPool hammers one engine from many
// goroutines so `go test -race` can observe the workspace pool under real
// contention: concurrent queries borrowing/returning workspaces, cache hits
// interleaved with computations, and pool invalidations racing both.
func TestEngineConcurrentQueriesSharedPool(t *testing.T) {
	e, g := testEngine(t, EngineOptions{Workers: 4})
	ctx := context.Background()

	// Reference answers computed before the stampede.
	refs := make(map[int32][]float64)
	for src := int32(0); src < 8; src++ {
		res, err := e.Query(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		refs[src] = res.Scores
	}
	e.Invalidate() // force the stampede to recompute everything

	const goroutines = 8
	const perG = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				src := int32((gi*perG + i) % 8)
				res, err := e.Query(ctx, src)
				if err != nil {
					errs <- err
					return
				}
				want := refs[src]
				for v := range want {
					if math.Float64bits(res.Scores[v]) != math.Float64bits(want[v]) {
						t.Errorf("src=%d scores[%d]=%v, want %v", src, v, res.Scores[v], want[v])
						return
					}
				}
			}
		}()
	}
	// Race pool invalidation against the queries (recomputations after an
	// epoch bump must still produce the same deterministic answers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			e.Invalidate()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_ = g
}

// TestEngineWalkWorkerClamp checks the oversubscription fix: the resolved
// per-query walk parallelism never lets Workers × WalkWorkers exceed
// GOMAXPROCS (and is at least 1).
func TestEngineWalkWorkerClamp(t *testing.T) {
	g := GenerateBarabasiAlbert(50, 2, 1)
	for _, tc := range []struct{ workers, walk int }{
		{0, 0}, {1, 0}, {4, 0}, {1, 1024}, {2, 3}, {64, 64},
	} {
		e := NewEngine(g, DefaultParams(g), EngineOptions{Workers: tc.workers, WalkWorkers: tc.walk})
		got := e.WalkWorkers()
		if got < 1 {
			t.Errorf("Workers=%d WalkWorkers=%d: resolved %d < 1", tc.workers, tc.walk, got)
		}
		if tc.walk > 0 && got > tc.walk {
			t.Errorf("Workers=%d WalkWorkers=%d: resolved %d exceeds request", tc.workers, tc.walk, got)
		}
		e.Close()
	}
}
