// Package resacc is a Go implementation of ResAcc — the index-free,
// output-bounded, high-efficiency algorithm for approximate single-source
// Random Walk with Restart (RWR) queries from
//
//	Lin, Wong, Xie, Wei. "Index-Free Approach with Theoretical Guarantee
//	for Efficient Random Walk with Restart Query." ICDE 2020.
//
// The package answers the approximate SSRWR query of the paper's
// Definition 1: given a directed graph, a source node s, a restart
// probability α, a threshold δ, a relative error ε and a failure
// probability p_f, it returns estimates π̂(s,t) such that for every node t
// with π(s,t) > δ, with probability at least 1−p_f,
//
//	|π̂(s,t) − π(s,t)| ≤ ε·π(s,t).
//
// Basic use:
//
//	g, err := resacc.LoadEdgeList(file, resacc.LoadOptions{Undirected: true})
//	p := resacc.DefaultParams(g)
//	res, err := resacc.Query(g, source, p)
//	for _, r := range res.TopK(10) {
//		fmt.Println(r.Node, r.Score)
//	}
//
// Besides ResAcc itself, the module ships every baseline of the paper's
// evaluation (Power, Forward Search, Monte-Carlo sampling, FORA, FORA+,
// BiPPR, TopPPR, TPA, BePI-lite, Particle Filtering and the exact Inverse
// solver); use NewSolver to select one by name.
package resacc

import (
	"io"

	"resacc/internal/algo"
	"resacc/internal/core"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

// Graph is a directed graph in immutable CSR form. See LoadEdgeList,
// NewGraphBuilder and the Generate helpers for construction.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// LoadOptions configures LoadEdgeList.
type LoadOptions = graph.LoadOptions

// Params carries the query parameters of the approximate SSRWR query
// (Definition 1) plus per-algorithm tuning knobs.
type Params = algo.Params

// Stats reports ResAcc's per-phase breakdown (h-HopFWD / OMFWD / Remedy).
type Stats = core.Stats

// NewGraphBuilder returns a Builder for a graph with n nodes (ids 0..n-1).
func NewGraphBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadEdgeList parses a whitespace-separated edge list ("u v" per line;
// '#'/'%' comments).
func LoadEdgeList(r io.Reader, opts LoadOptions) (*Graph, error) {
	return graph.LoadEdgeList(r, opts)
}

// WriteEdgeList writes g in the format LoadEdgeList parses.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// DefaultParams returns the paper's default setting for g: α=0.2, ε=0.5,
// δ=p_f=1/n, r_max^f=1/(10m), r_max^hop=1e-14, h=2.
func DefaultParams(g *Graph) Params { return algo.DefaultParams(g) }

// GenerateRMAT returns a skewed social-network-like graph with 2^scale
// nodes and about edgeFactor·2^scale edges.
func GenerateRMAT(scale, edgeFactor int, seed uint64) *Graph {
	return gen.RMAT(scale, edgeFactor, seed)
}

// GenerateBarabasiAlbert returns an undirected preferential-attachment
// graph (both edge directions materialised).
func GenerateBarabasiAlbert(n, k int, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, k, seed)
}

// GenerateErdosRenyi returns a uniform random digraph with n nodes and m
// edges.
func GenerateErdosRenyi(n, m int, seed uint64) *Graph {
	return gen.ErdosRenyi(n, m, seed)
}

// GenerateCommunities returns an undirected graph with planted communities
// of size communitySize (intra-degree kIn, inter-degree kOut) plus the
// ground-truth partition.
func GenerateCommunities(n, communitySize, kIn, kOut int, seed uint64) (*Graph, [][]int32) {
	return gen.PlantedCommunities(n, communitySize, kIn, kOut, seed)
}
