package resacc

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resacc/internal/algo"
)

func testEngine(t *testing.T, opts EngineOptions) (*Engine, *Graph) {
	t.Helper()
	g := GenerateBarabasiAlbert(300, 3, 11)
	e := NewEngine(g, DefaultParams(g), opts)
	t.Cleanup(e.Close)
	return e, g
}

// workCounters snapshots the process-wide walk/push tallies so tests can
// assert whether ResAcc actually ran.
func workCounters() (walks, pushes int64) {
	return algo.TotalWalks(), algo.TotalPushes()
}

func TestEngineCacheHitSkipsComputation(t *testing.T) {
	e, _ := testEngine(t, EngineOptions{})
	ctx := context.Background()

	res1, err := e.Query(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	walks, pushes := workCounters()
	res2, err := e.Query(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	w2, p2 := workCounters()
	if w2 != walks || p2 != pushes {
		t.Fatalf("cache hit did work: walks %d->%d, pushes %d->%d", walks, w2, pushes, p2)
	}
	if res2 != res1 {
		t.Fatal("cache hit returned a different result pointer")
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEngineSingleflightCollapsesDuplicates(t *testing.T) {
	e, _ := testEngine(t, EngineOptions{Workers: 2, QueueDepth: 64})
	ctx := context.Background()

	// Cost of one computation, measured on a separate cold source.
	w0, _ := workCounters()
	if _, err := e.Query(ctx, 7); err != nil {
		t.Fatal(err)
	}
	w1, _ := workCounters()
	oneQuery := w1 - w0
	if oneQuery == 0 {
		t.Fatal("expected a real query to simulate walks")
	}

	// N concurrent queries for one cold source must cost ~one computation
	// (singleflight) — not N of them.
	const callers = 8
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Query(ctx, 9); err != nil {
				firstErr.Store(err)
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		t.Fatal(err)
	}
	w2, _ := workCounters()
	spent := w2 - w1
	// Timing may let a caller miss the flight and recompute once more, but
	// anything close to callers× means dedup is broken.
	if spent > 2*oneQuery {
		t.Fatalf("%d concurrent duplicates spent %d walks (single query costs %d)", callers, spent, oneQuery)
	}
	st := e.Stats()
	if st.Joins == 0 && st.Hits == 0 {
		t.Fatalf("no dedup joins and no hits across duplicate burst: %+v", st)
	}
}

func TestEngineShedsUnderSaturation(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	slow := func(_ context.Context, g *Graph, source int32, _ Params) (*Result, error) {
		started <- struct{}{}
		<-block
		return &Result{Source: source, Scores: make([]float64, g.N())}, nil
	}
	e, _ := testEngine(t, EngineOptions{Workers: 1, QueueDepth: 1, Compute: slow})
	ctx := context.Background()

	go e.Query(ctx, 1) // occupies the worker
	<-started
	go e.Query(ctx, 2) // occupies the single queue slot
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().QueueDepth != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	_, err := e.Query(ctx, 3)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err=%v, want ErrOverloaded", err)
	}
	if e.Stats().Shed != 1 {
		t.Fatalf("shed=%v, want 1", e.Stats().Shed)
	}
	close(block)
}

func TestEngineInvalidationAfterDynamicRebuild(t *testing.T) {
	g := GenerateBarabasiAlbert(120, 3, 13)
	e := NewEngine(g, DefaultParams(g), EngineOptions{})
	defer e.Close()
	ctx := context.Background()

	before, err := e.Query(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Rewire node 0: drop its current out-edges, point it at the far end
	// of the id space. Its RWR vector must change materially.
	d := NewDynamicGraph(g)
	for _, w := range g.Out(0) {
		if err := d.RemoveEdge(0, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddEdge(0, 119); err != nil {
		t.Fatal(err)
	}

	refreshed, err := e.SyncDynamic(d)
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("SyncDynamic did not refresh after edits")
	}
	if refreshed, _ := e.SyncDynamic(d); refreshed {
		t.Fatal("SyncDynamic refreshed twice for the same version")
	}
	if e.Stats().CacheEntries != 0 {
		t.Fatalf("cache not purged: %d entries", e.Stats().CacheEntries)
	}

	after, err := e.Query(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Scores[119]-before.Scores[119]) < 1e-6 {
		t.Fatalf("score to new neighbour unchanged: before=%g after=%g",
			before.Scores[119], after.Scores[119])
	}
	if e.Stats().Epoch != 1 {
		t.Fatalf("epoch=%d, want 1", e.Stats().Epoch)
	}
}

func TestEngineQueryTopK(t *testing.T) {
	e, g := testEngine(t, EngineOptions{})
	ctx := context.Background()

	top, err := e.QueryTopK(ctx, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ranked := top.Ranked
	if len(ranked) != 5 {
		t.Fatalf("got %d ranked, want 5", len(ranked))
	}
	if top.Degraded {
		t.Fatal("undeadlined query reported degraded")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("ranking not sorted")
		}
	}
	// k clamps to n.
	top, err = e.QueryTopK(ctx, 3, g.N()+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Ranked) != g.N() {
		t.Fatalf("got %d ranked, want n=%d", len(top.Ranked), g.N())
	}
	if _, err := e.QueryTopK(ctx, 3, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// Cached: second identical call does no walk/push work.
	w, p := workCounters()
	if _, err := e.QueryTopK(ctx, 3, 5); err != nil {
		t.Fatal(err)
	}
	if w2, p2 := workCounters(); w2 != w || p2 != p {
		t.Fatal("top-k cache hit did work")
	}
}

func TestEngineQueryPair(t *testing.T) {
	e, g := testEngine(t, EngineOptions{})
	ctx := context.Background()

	full, err := e.Query(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.QueryPair(ctx, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est < 0 || est > 1 {
		t.Fatalf("pair estimate %g outside [0,1]", est)
	}
	if full.Scores[4] > 0.01 && est == 0 {
		t.Fatalf("pair=0 but full vector says %g", full.Scores[4])
	}
	if _, err := e.QueryPair(ctx, 2, int32(g.N())); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestEngineQueryBatch(t *testing.T) {
	e, _ := testEngine(t, EngineOptions{Workers: 2, QueueDepth: 2})
	ctx := context.Background()

	// 12 items over a depth-2 queue: batch items must wait, not shed.
	sources := []int32{1, 2, 3, 1, 2, 3, 1, 2, 3, 4, 5, 6}
	results, errs := e.QueryBatch(ctx, sources)
	for i := range sources {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if results[i] == nil || results[i].Source != sources[i] {
			t.Fatalf("item %d: wrong result %+v", i, results[i])
		}
	}
	// Repeats collapse: at most 6 distinct computations.
	st := e.Stats()
	if st.Misses > 0 && st.Hits+st.Joins == 0 {
		t.Fatalf("no sharing across repeated batch sources: %+v", st)
	}
	if st.Shed != 0 {
		t.Fatalf("batch items shed: %+v", st)
	}

	// Invalid source surfaces as a per-item error, not a batch failure.
	results, errs = e.QueryBatch(ctx, []int32{1, 100000})
	if errs[0] != nil || results[0] == nil {
		t.Fatalf("valid item failed: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("invalid source accepted")
	}
}

func TestEngineBatchHonoursContext(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	slow := func(_ context.Context, g *Graph, source int32, _ Params) (*Result, error) {
		<-block
		return &Result{Source: source, Scores: make([]float64, g.N())}, nil
	}
	e, _ := testEngine(t, EngineOptions{Workers: 1, QueueDepth: 1, Compute: slow})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	_, errs := e.QueryBatch(ctx, []int32{1, 2, 3, 4, 5, 6, 7, 8})
	deadlineErrs := 0
	for _, err := range errs {
		if errors.Is(err, context.DeadlineExceeded) {
			deadlineErrs++
		}
	}
	if deadlineErrs == 0 {
		t.Fatalf("no deadline errors in saturated batch: %v", errs)
	}
}

func TestEngineParamsFingerprintSeparatesEngines(t *testing.T) {
	g := GenerateBarabasiAlbert(150, 3, 17)
	p := DefaultParams(g)
	e1 := NewEngine(g, p, EngineOptions{})
	defer e1.Close()
	q := p
	q.Epsilon = 0.1
	e2 := NewEngine(g, q, EngineOptions{})
	defer e2.Close()
	if e1.fp == e2.fp {
		t.Fatal("different params share a fingerprint")
	}
	if e1.Params().Epsilon == e2.Params().Epsilon {
		t.Fatal("params not retained")
	}
}

// TestEngineSyncDynamicNetZeroIsNoOp: an edit session whose edits cancel
// out (add then remove the same edge) must not rebuild, purge, or bump
// anything — only the version watermark advances.
func TestEngineSyncDynamicNetZeroIsNoOp(t *testing.T) {
	e, g := testEngine(t, EngineOptions{})
	ctx := context.Background()
	if _, err := e.Query(ctx, 3); err != nil {
		t.Fatal(err)
	}

	d := NewDynamicGraph(g)
	u, v := int32(7), int32(211)
	if g.HasEdge(u, v) {
		t.Fatalf("test edge %d->%d already present", u, v)
	}
	if err := d.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(u, v); err != nil {
		t.Fatal(err)
	}
	refreshed, err := e.SyncDynamic(d)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed {
		t.Fatal("net-zero edit session triggered a rebuild")
	}
	st := e.Stats()
	if st.CacheEntries != 1 || st.Epoch != 0 {
		t.Fatalf("net-zero sync disturbed the cache: %+v", st)
	}
	// The watermark advanced: syncing again without edits is also a no-op.
	if refreshed, _ := e.SyncDynamic(d); refreshed {
		t.Fatal("second sync of the same version refreshed")
	}
}

// TestEngineSyncDynamicScopedInvalidation: when the edit's source endpoint
// is unreachable from other nodes (no in-edges), the delta-affected region
// is just that node, so cached results for other sources survive the swap
// and the cache epoch stays put.
func TestEngineSyncDynamicScopedInvalidation(t *testing.T) {
	// Directed graph: a cycle over 0..9 keeps every node out-degree ≥ 1,
	// and node 10 points into the cycle with nothing pointing back at it.
	b := NewGraphBuilder(12)
	for i := int32(0); i < 10; i++ {
		b.AddEdge(i, (i+1)%10)
	}
	b.AddEdge(10, 0)
	b.AddEdge(11, 10) // 11 reaches 10; nothing reaches 11
	g := b.MustBuild()
	e := NewEngine(g, DefaultParams(g), EngineOptions{})
	defer e.Close()
	ctx := context.Background()

	for _, s := range []int32{2, 5, 11} {
		if _, err := e.Query(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().CacheEntries != 3 {
		t.Fatalf("warm entries=%d, want 3", e.Stats().CacheEntries)
	}

	d := NewDynamicGraph(g)
	if err := d.AddEdge(11, 4); err != nil { // changed source 11: in-degree 0
		t.Fatal(err)
	}
	refreshed, err := e.SyncDynamic(d)
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("edit did not refresh the engine")
	}
	st := e.Stats()
	if st.Epoch != 0 {
		t.Fatalf("scoped sync bumped the epoch: %+v", st)
	}
	if st.CacheEntries != 2 {
		t.Fatalf("want only source 11 invalidated, cache has %d entries", st.CacheEntries)
	}
	if !e.Graph().HasEdge(11, 4) {
		t.Fatal("engine not serving the edited graph")
	}
	// Sources 2 and 5 still hit; source 11 recomputes.
	hits0 := st.Hits
	for _, s := range []int32{2, 5} {
		if _, err := e.Query(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Hits - hits0; got != 2 {
		t.Fatalf("surviving entries got %v hits, want 2", got)
	}
	res, err := e.Query(ctx, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[4] == 0 {
		t.Fatal("recomputed source 11 does not see the new edge")
	}
}

// TestEngineSyncDynamicReSyncAfterNetZero: SyncDynamic never re-bases the
// caller's Dynamic, so after one sync the session's edits no longer
// describe the served graph. The regression: add e → sync (engine serves a
// snapshot WITH e) → remove e → sync. The session's pending edits are now
// (0,0), but treating that as "nothing to do" would leave the engine
// serving the deleted edge forever; the second sync must swap back to the
// edge-free graph and purge.
func TestEngineSyncDynamicReSyncAfterNetZero(t *testing.T) {
	e, g := testEngine(t, EngineOptions{})
	ctx := context.Background()

	d := NewDynamicGraph(g)
	u, v := int32(7), int32(211)
	if g.HasEdge(u, v) {
		t.Fatalf("test edge %d->%d already present", u, v)
	}
	if err := d.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	if refreshed, err := e.SyncDynamic(d); err != nil || !refreshed {
		t.Fatalf("first sync: refreshed=%v err=%v", refreshed, err)
	}
	if !e.Graph().HasEdge(u, v) {
		t.Fatal("engine not serving the added edge after first sync")
	}
	before, err := e.Query(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if before.Scores[v] == 0 {
		t.Fatalf("source %d does not see the added edge", u)
	}

	if err := d.RemoveEdge(u, v); err != nil {
		t.Fatal(err)
	}
	refreshed, err := e.SyncDynamic(d)
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("net-zero session over a superseded base reported nothing to do")
	}
	if e.Graph().HasEdge(u, v) {
		t.Fatal("engine still serving the deleted edge after re-sync")
	}
	// The session base no longer matches the served graph, so the swap
	// must have purged rather than trusting the cumulative (empty) delta.
	if st := e.Stats(); st.CacheEntries != 0 {
		t.Fatalf("stale entries survived the re-sync: %+v", st)
	}
	after, err := e.Query(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if after.Scores[v] >= before.Scores[v] {
		t.Fatalf("score to removed neighbour did not drop: before=%g after=%g",
			before.Scores[v], after.Scores[v])
	}
}

// TestEngineComputeStraddlingScopedSwapNotCached: a computation that
// pinned the pre-swap snapshot and finishes after a scoped swap must not
// land in the cache — the key epoch is unchanged by a scoped swap, so only
// the put gate (entry snapshot epoch vs currently published snapshot
// epoch) stands between the swap's invalidation sweep and a stale answer
// for an affected source surviving indefinitely.
func TestEngineComputeStraddlingScopedSwapNotCached(t *testing.T) {
	// Directed: a cycle over 0..9, 11→10→0; node 11 has no in-edges, so an
	// edit sourced at 11 scopes to exactly {11}.
	b := NewGraphBuilder(12)
	for i := int32(0); i < 10; i++ {
		b.AddEdge(i, (i+1)%10)
	}
	b.AddEdge(10, 0)
	b.AddEdge(11, 10)
	g := b.MustBuild()

	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	compute := func(_ context.Context, cg *Graph, source int32, _ Params) (*Result, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
		}
		return &Result{Source: source, Scores: make([]float64, cg.N())}, nil
	}
	e := NewEngine(g, DefaultParams(g), EngineOptions{Compute: compute})
	defer e.Close()
	l, err := e.StartLive(LiveOptions{MaxStaleness: time.Hour, Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		_, qerr := e.Query(context.Background(), 11)
		done <- qerr
	}()
	<-started // the computation has pinned the pre-swap snapshot

	if _, err := l.Apply([][2]int32{{11, 4}}, nil); err != nil {
		t.Fatal(err)
	}
	if swapped, err := l.Flush(); err != nil || !swapped {
		t.Fatalf("flush: swapped=%v err=%v", swapped, err)
	}
	if st := l.Stats(); st.ScopedSwaps != 1 {
		// A full purge would bump the key epoch and mask the gate.
		t.Fatalf("swap not scoped: %+v", st)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The straddling result must have been refused by the put gate, so the
	// same query recomputes against the new snapshot instead of hitting a
	// stale entry.
	if _, err := e.Query(context.Background(), 11); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("straddling result was served from cache: computes=%d, want 2", got)
	}
}

// TestEngineSyncDynamicForeignBasePurges: a Dynamic built over a graph the
// engine never served gets no scoped invalidation — its cumulative edits
// describe the wrong delta — so the sync must swap in the snapshot and
// purge the whole cache (epoch bump).
func TestEngineSyncDynamicForeignBasePurges(t *testing.T) {
	e, g := testEngine(t, EngineOptions{})
	ctx := context.Background()
	if _, err := e.Query(ctx, 3); err != nil {
		t.Fatal(err)
	}

	other := GenerateBarabasiAlbert(g.N(), 3, 99) // same n, different lineage
	d := NewDynamicGraph(other)
	if err := d.AddEdge(7, 211); err != nil {
		t.Fatal(err)
	}
	refreshed, err := e.SyncDynamic(d)
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("foreign-base sync did not refresh")
	}
	st := e.Stats()
	if st.Epoch != 1 {
		t.Fatalf("foreign-base sync did not purge fully: %+v", st)
	}
	if st.CacheEntries != 0 {
		t.Fatalf("stale entries survived a foreign-base sync: %+v", st)
	}
	if !e.Graph().HasEdge(7, 211) {
		t.Fatal("engine not serving the foreign snapshot")
	}
}
