module resacc

go 1.22
