package resacc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestEnginePressureShedsAndRecovers drives the facade's pressure monitor
// with an injected signal: Critical sheds fresh queries with ErrOverloaded
// while cache hits keep serving, and dropping the signal restores service.
func TestEnginePressureShedsAndRecovers(t *testing.T) {
	e, _ := testEngine(t, EngineOptions{Workers: 1})
	ctx := context.Background()

	if _, err := e.Query(ctx, 3); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.PressureLevel != "nominal" {
		t.Fatalf("idle pressure level = %q, want nominal", st.PressureLevel)
	}

	e.Pressure().SetSignal("test_overload", func() float64 { return 2.0 })
	if _, err := e.Query(ctx, 4); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fresh query at Critical = %v, want ErrOverloaded", err)
	}
	if _, err := e.Query(ctx, 3); err != nil {
		t.Fatalf("cached query at Critical = %v, want served", err)
	}
	if st := e.Stats(); st.PressureLevel != "critical" || st.PressureLoads["test_overload"] != 2.0 {
		t.Fatalf("stats under load: level=%q loads=%v", st.PressureLevel, st.PressureLoads)
	}

	e.Pressure().SetSignal("test_overload", nil)
	if _, err := e.Query(ctx, 4); err != nil {
		t.Fatalf("query after recovery = %v, want served", err)
	}
}

// TestEngineRetryAfterBounds checks the drain-derived hint is always a
// whole-second value inside the clamp, even on a cold engine.
func TestEngineRetryAfterBounds(t *testing.T) {
	e, _ := testEngine(t, EngineOptions{Workers: 1})
	if _, err := e.Query(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	d := e.RetryAfter()
	if d < time.Second || d > 30*time.Second || d%time.Second != 0 {
		t.Fatalf("RetryAfter = %v, want whole seconds in [1s, 30s]", d)
	}
}

// TestLiveBacklogFacade checks the ErrEditBacklog export, the write-path
// Retry-After, and that the edit_backlog pressure signal tracks the
// attached write path and detaches with it.
func TestLiveBacklogFacade(t *testing.T) {
	e, _ := testEngine(t, EngineOptions{})
	l, err := e.StartLive(LiveOptions{MaxStaleness: time.Hour, MaxPending: 100, MaxBacklog: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply([][2]int32{{0, 9}, {0, 10}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply([][2]int32{{0, 11}}, nil); !errors.Is(err, ErrEditBacklog) {
		t.Fatalf("Apply past backlog = %v, want ErrEditBacklog", err)
	}
	if d := l.RetryAfter(); d < time.Second || d%time.Second != 0 {
		t.Fatalf("write RetryAfter = %v, want whole seconds ≥ 1s", d)
	}
	if f := l.BacklogFrac(); f != 1.0 {
		t.Fatalf("BacklogFrac = %v, want 1.0", f)
	}
	if st := e.Stats(); st.PressureLoads["edit_backlog"] != 1.0 {
		t.Fatalf("edit_backlog signal = %v, want 1.0", st.PressureLoads["edit_backlog"])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PressureLoads["edit_backlog"] != 0 {
		t.Fatalf("edit_backlog signal survived Close: %v", st.PressureLoads)
	}
}
