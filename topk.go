package resacc

import (
	"fmt"
	"time"

	"resacc/internal/core"
)

// QueryTopK returns the k nodes most relevant to source, refining
// adaptively: it answers the query with a reduced remedy budget first and
// doubles the budget until the top-k membership is stable across two
// consecutive rounds (or the full Definition 1 budget is reached). On
// graphs where the ranking is decided early this is substantially cheaper
// than a full-precision query; in the worst case it costs one extra
// low-budget round.
//
// This is an extension beyond the paper (which targets the full
// single-source vector); the final round never exceeds the paper's walk
// budget, so the returned scores still satisfy the Definition 1 guarantee
// whenever the adaptive loop runs to the full budget, and are flagged
// otherwise via the returned precision level.
func QueryTopK(g *Graph, source int32, k int, p Params) ([]Ranked, float64, error) {
	return queryTopKSolver(g, source, k, p, core.Solver{})
}

// queryTopKSolver is QueryTopK with an explicit solver (see querySolver).
func queryTopKSolver(g *Graph, source int32, k int, p Params, s core.Solver) ([]Ranked, float64, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("resacc: QueryTopK needs k > 0, got %d", k)
	}
	target := p.EffectiveNScale()
	var prev []Ranked
	for scale := target / 8; ; scale *= 2 {
		if scale > target {
			scale = target
		}
		q := p
		q.NScale = scale
		roundStart := time.Now()
		scores, stats, err := s.Query(g, source, q)
		notifyQueryHooks(QueryEvent{Graph: g, Source: source, Start: roundStart, Duration: time.Since(roundStart), Stats: stats, Err: err})
		if err != nil {
			return nil, 0, err
		}
		res := Result{Source: source, Scores: scores}
		cur := res.TopK(k)
		if scale >= target {
			return cur, scale, nil
		}
		if prev != nil && sameMembers(prev, cur) {
			return cur, scale, nil
		}
		prev = cur
	}
}

func sameMembers(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[int32]struct{}, len(a))
	for _, r := range a {
		in[r.Node] = struct{}{}
	}
	for _, r := range b {
		if _, ok := in[r.Node]; !ok {
			return false
		}
	}
	return true
}
