package resacc

import (
	"context"
	"fmt"
	"time"

	"resacc/internal/core"
)

// TopK is the answer to a top-k query: the ranking plus how it was
// produced. Level is the NScale precision the final round ran at (see
// QueryTopK); the degradation fields mirror Result's and are set when the
// query's deadline cut the final round short.
type TopK struct {
	// Ranked is the top-k nodes in decreasing score order.
	Ranked []Ranked
	// Level is the precision level (walk-budget scale) of the round that
	// produced the ranking.
	Level float64
	// Degraded reports the ranking came from a deadline-truncated round;
	// scores are underestimates within Bound (see Result.Degraded).
	Degraded bool
	// Bound is the additive score error bound when Degraded.
	Bound float64
	// Phase names the interrupted phase ("hhopfwd", "omfwd", "remedy")
	// when Degraded, "" otherwise.
	Phase string
}

// QueryTopK returns the k nodes most relevant to source, refining
// adaptively: it answers the query with a reduced remedy budget first and
// doubles the budget until the top-k membership is stable across two
// consecutive rounds (or the full Definition 1 budget is reached). On
// graphs where the ranking is decided early this is substantially cheaper
// than a full-precision query; in the worst case it costs one extra
// low-budget round.
//
// This is an extension beyond the paper (which targets the full
// single-source vector); the final round never exceeds the paper's walk
// budget, so the returned scores still satisfy the Definition 1 guarantee
// whenever the adaptive loop runs to the full budget, and are flagged
// otherwise via the returned precision level.
func QueryTopK(g *Graph, source int32, k int, p Params) ([]Ranked, float64, error) {
	tk, err := queryTopKSolverCtx(context.Background(), g, source, k, p, core.Solver{})
	return tk.Ranked, tk.Level, err
}

// QueryTopKCtx is QueryTopK under a context: a deadline stops the current
// refinement round at its next amortized check and the ranking computed
// from the partial scores is returned with the degradation fields set.
func QueryTopKCtx(ctx context.Context, g *Graph, source int32, k int, p Params) (TopK, error) {
	return queryTopKSolverCtx(ctx, g, source, k, p, core.Solver{})
}

// queryTopKSolverCtx is QueryTopKCtx with an explicit solver (see
// querySolver). A degraded round ends the adaptive loop immediately — a
// later, cheaper-round ranking cannot be trusted to improve on it and the
// deadline has already fired.
func queryTopKSolverCtx(ctx context.Context, g *Graph, source int32, k int, p Params, s core.Solver) (TopK, error) {
	tk, _, err := queryTopKSolverOn(ctx, g, g, source, source, k, p, s)
	return tk, err
}

// queryTopKSolverOn is queryTopKSolverCtx with the serving boundary split
// out, mirroring querySolverOn: rounds run on g with internal source src;
// events and the ranking speak the caller's id space (eventG, source). A
// relabeling engine passes a solver whose ScoreRemap translates each
// round's scores before ranking, so the ranked node ids come out
// caller-space with no extra pass here.
//
// The second return is the total fresh remedy walks across all rounds:
// zero with a hot endpoint set attached (s.Endpoints) means every round
// was fully served by replay. A set built at the full Definition 1 budget
// covers every reduced-budget round too — each round's per-node demand
// n_v scales down with its NScale while the stored ω was sized at the
// target scale — so hot top-k queries are normally walk-free end to end.
func queryTopKSolverOn(ctx context.Context, g, eventG *Graph, src, source int32, k int, p Params, s core.Solver) (TopK, int64, error) {
	if k <= 0 {
		return TopK{}, 0, fmt.Errorf("resacc: QueryTopK needs k > 0, got %d", k)
	}
	target := p.EffectiveNScale()
	var prev []Ranked
	var walks int64
	for scale := target / 8; ; scale *= 2 {
		if scale > target {
			scale = target
		}
		q := p
		q.NScale = scale
		roundStart := time.Now()
		scores, stats, err := s.QueryCtx(ctx, g, src, q)
		notifyQueryHooks(QueryEvent{Graph: eventG, Source: source, Start: roundStart, Duration: time.Since(roundStart), Stats: stats, Err: err})
		if err != nil {
			return TopK{}, walks, err
		}
		walks += stats.Walks
		res := Result{Source: source, Scores: scores}
		cur := res.TopK(k)
		if stats.Degraded {
			return TopK{
				Ranked: cur, Level: scale,
				Degraded: true, Bound: stats.ResidualBound,
				Phase: stats.DegradedPhase.String(),
			}, walks, nil
		}
		if scale >= target {
			return TopK{Ranked: cur, Level: scale}, walks, nil
		}
		if prev != nil && sameMembers(prev, cur) {
			return TopK{Ranked: cur, Level: scale}, walks, nil
		}
		prev = cur
	}
}

func sameMembers(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[int32]struct{}, len(a))
	for _, r := range a {
		in[r.Node] = struct{}{}
	}
	for _, r := range b {
		if _, ok := in[r.Node]; !ok {
			return false
		}
	}
	return true
}
